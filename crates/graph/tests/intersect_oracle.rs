//! Randomized differential oracle for the intersection kernels.
//!
//! Every kernel in `tfx_graph::intersect` — the auto-dispatching entry
//! point, the galloping merge (both argument orders), and the linear block
//! kernel — must produce byte-identical output to the naive sorted-merge
//! reference on *any* pair of sorted duplicate-free runs. This test sweeps
//! run-length pairs across the dispatcher's size-ratio regimes (including
//! adversarial ratios far past `GALLOP_RATIO`), overlap densities from
//! disjoint to identical, and value ranges from dense to sparse, using a
//! deterministic xorshift generator so any failure replays exactly.

use tfx_graph::intersect::{
    intersect_gallop_into, intersect_into, intersect_linear_into, intersect_reference,
};
use tfx_graph::{contains_sorted, VertexId};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 % bound
    }
}

/// A sorted duplicate-free run of `len` ids drawn from `[0, range)`.
fn random_run(rng: &mut XorShift, len: usize, range: u64) -> Vec<VertexId> {
    let mut v: Vec<u32> = (0..len).map(|_| rng.next(range) as u32).collect();
    v.sort_unstable();
    v.dedup();
    v.into_iter().map(VertexId).collect()
}

fn check_all_kernels(a: &[VertexId], b: &[VertexId], case: &str) {
    let expect = intersect_reference(a, b);
    let mut got = Vec::new();
    intersect_into(a, b, &mut got);
    assert_eq!(got, expect, "auto dispatch diverged ({case})");
    got.clear();
    intersect_linear_into(a, b, &mut got);
    assert_eq!(got, expect, "linear kernel diverged ({case})");
    got.clear();
    intersect_gallop_into(a, b, &mut got);
    assert_eq!(got, expect, "gallop(a,b) diverged ({case})");
    got.clear();
    intersect_gallop_into(b, a, &mut got);
    assert_eq!(got, expect, "gallop(b,a) diverged ({case})");
    // The output of any kernel must itself be sorted and duplicate-free.
    assert!(expect.windows(2).all(|w| w[0] < w[1]), "output not strictly sorted ({case})");
    // Membership probes agree with the reference intersection.
    for &x in expect.iter().take(8) {
        assert!(contains_sorted(a, x) && contains_sorted(b, x), "probe missed member ({case})");
    }
}

#[test]
fn randomized_runs_match_reference_across_regimes() {
    let mut rng = XorShift(0xDEAD_BEEF_CAFE_F00D);
    // (len_a, len_b) pairs covering: tiny×tiny, tail-only (<4, so the block
    // kernel never runs a SIMD step), around the 4-lane block boundary,
    // balanced mid-size, and skewed ratios straddling GALLOP_RATIO.
    let shapes: &[(usize, usize)] = &[
        (0, 0),
        (1, 1),
        (3, 3),
        (4, 4),
        (5, 7),
        (8, 8),
        (16, 17),
        (64, 64),
        (100, 333),
        (7, 1000), // ratio ≈ 143 ≫ GALLOP_RATIO
        (1000, 7),
        (33, 512), // ratio ≈ 15, just under the cutoff
        (512, 2048),
        (1, 4096),
        (4096, 4096),
    ];
    // Sparse ranges give near-empty intersections; dense ranges force heavy
    // overlap (every value collides); `max(..)=len` makes runs near-identical.
    for &(na, nb) in shapes {
        for density in [4u64, 2, 1] {
            let range = ((na.max(nb) as u64) * density).max(1);
            for trial in 0..8 {
                let a = random_run(&mut rng, na, range);
                let b = random_run(&mut rng, nb, range);
                let case = format!("shape=({na},{nb}) density={density} trial={trial}");
                check_all_kernels(&a, &b, &case);
            }
        }
    }
}

#[test]
fn structured_edge_cases() {
    let ids = |xs: &[u32]| xs.iter().map(|&x| VertexId(x)).collect::<Vec<_>>();
    let checks: &[(Vec<VertexId>, Vec<VertexId>)] = &[
        // Identical runs.
        (ids(&[1, 2, 3, 4, 5, 6, 7, 8]), ids(&[1, 2, 3, 4, 5, 6, 7, 8])),
        // Fully disjoint, interleaved values.
        (ids(&[0, 2, 4, 6, 8, 10]), ids(&[1, 3, 5, 7, 9, 11])),
        // One run inside a single gap of the other.
        (ids(&[0, 1000]), ids(&[10, 11, 12, 13, 14, 15, 16, 17])),
        // Matches exactly at block boundaries (indices 3, 4, 7, 8).
        ((0..9u32).map(|i| VertexId(i * 10)).collect(), ids(&[30, 40, 70, 80])),
        // u32 extremes.
        (ids(&[0, u32::MAX - 1, u32::MAX]), ids(&[0, 1, u32::MAX])),
        // Singleton vs huge.
        (ids(&[500_000]), (0..100_000u32).map(|i| VertexId(i * 10)).collect()),
    ];
    for (i, (a, b)) in checks.iter().enumerate() {
        check_all_kernels(a, b, &format!("structured case {i}"));
    }
}

/// Sweep every alignment of both runs relative to the 4-lane SIMD blocks:
/// off-by-one lengths and offsets are where block kernels typically break.
#[test]
fn alignment_sweep() {
    let base: Vec<VertexId> = (0..40u32).map(|i| VertexId(i * 3)).collect();
    let other: Vec<VertexId> = (0..40u32).map(|i| VertexId(i * 2)).collect();
    for skip_a in 0..5 {
        for skip_b in 0..5 {
            for take_a in [0, 1, 3, 4, 5, 17, 35] {
                let a = &base[skip_a..(skip_a + take_a).min(base.len())];
                let b = &other[skip_b..];
                check_all_kernels(a, b, &format!("align a[{skip_a}..+{take_a}] b[{skip_b}..]"));
            }
        }
    }
}
