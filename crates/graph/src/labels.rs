//! Label sets and string interning.
//!
//! The paper's label function `L` maps a vertex to a *set* of labels, and a
//! query vertex `u` matches a data vertex `v` iff `L(u) ⊆ L(v)` (Def. 1).
//! Most vertices in the paper's datasets carry zero or one label, so
//! [`LabelSet`] is optimized for tiny cardinalities: a sorted inline `Vec`
//! with O(|a|+|b|) subset tests.

use crate::ids::LabelId;
use rustc_hash::FxHashMap;

/// A small, sorted, duplicate-free set of labels.
///
/// An empty set matches every vertex (this is how the unlabeled Netflow
/// vertices are modeled).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LabelSet {
    labels: Vec<LabelId>,
}

impl LabelSet {
    /// The empty label set (matches anything when used as a query label set).
    pub const fn empty() -> Self {
        LabelSet { labels: Vec::new() }
    }

    /// A singleton label set.
    pub fn single(l: LabelId) -> Self {
        LabelSet { labels: vec![l] }
    }

    /// Builds a set from arbitrary labels, sorting and deduplicating.
    pub fn from_labels(mut labels: Vec<LabelId>) -> Self {
        labels.sort_unstable();
        labels.dedup();
        LabelSet { labels }
    }

    /// Number of labels in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// True iff `l` is in the set (binary search).
    #[inline]
    pub fn contains(&self, l: LabelId) -> bool {
        match self.labels.len() {
            0 => false,
            1 => self.labels[0] == l,
            _ => self.labels.binary_search(&l).is_ok(),
        }
    }

    /// Inserts a label, keeping the set sorted. Returns `false` if already
    /// present.
    pub fn insert(&mut self, l: LabelId) -> bool {
        match self.labels.binary_search(&l) {
            Ok(_) => false,
            Err(pos) => {
                self.labels.insert(pos, l);
                true
            }
        }
    }

    /// The paper's matching test: `self ⊆ other` via sorted merge.
    pub fn is_subset_of(&self, other: &LabelSet) -> bool {
        if self.labels.len() > other.labels.len() {
            return false;
        }
        let mut oi = 0;
        'outer: for &l in &self.labels {
            while oi < other.labels.len() {
                match other.labels[oi].cmp(&l) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Iterates over the labels in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = LabelId> + '_ {
        self.labels.iter().copied()
    }

    /// The labels as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[LabelId] {
        &self.labels
    }
}

impl std::fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.labels.iter()).finish()
    }
}

impl FromIterator<LabelId> for LabelSet {
    fn from_iter<T: IntoIterator<Item = LabelId>>(iter: T) -> Self {
        LabelSet::from_labels(iter.into_iter().collect())
    }
}

/// Bidirectional mapping between label strings and [`LabelId`]s.
///
/// Datasets and queries are authored with human-readable labels
/// (`"User"`, `"knows"`, `"tcp"`, ...); the engines only ever see ids.
#[derive(Default, Clone)]
pub struct LabelInterner {
    by_name: FxHashMap<String, LabelId>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already interned label.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// The string for an id, if it was produced by this interner.
    pub fn name(&self, id: LabelId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> LabelSet {
        LabelSet::from_labels(ids.iter().map(|&i| LabelId(i)).collect())
    }

    #[test]
    fn from_labels_sorts_and_dedups() {
        let s = set(&[3, 1, 3, 2]);
        assert_eq!(s.as_slice(), &[LabelId(1), LabelId(2), LabelId(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_is_subset_of_everything() {
        assert!(LabelSet::empty().is_subset_of(&set(&[1, 2])));
        assert!(LabelSet::empty().is_subset_of(&LabelSet::empty()));
    }

    #[test]
    fn subset_tests() {
        assert!(set(&[1]).is_subset_of(&set(&[1, 2])));
        assert!(set(&[1, 2]).is_subset_of(&set(&[1, 2])));
        assert!(!set(&[1, 3]).is_subset_of(&set(&[1, 2])));
        assert!(!set(&[1, 2, 3]).is_subset_of(&set(&[1, 2])));
        assert!(!set(&[0]).is_subset_of(&set(&[1, 2])));
        assert!(!set(&[5]).is_subset_of(&set(&[1, 2])));
        assert!(!set(&[1]).is_subset_of(&LabelSet::empty()));
    }

    #[test]
    fn contains_and_insert() {
        let mut s = set(&[2, 4]);
        assert!(s.contains(LabelId(2)));
        assert!(!s.contains(LabelId(3)));
        assert!(s.insert(LabelId(3)));
        assert!(!s.insert(LabelId(3)));
        assert_eq!(s.as_slice(), &[LabelId(2), LabelId(3), LabelId(4)]);
    }

    #[test]
    fn singleton_contains_fast_path() {
        let s = LabelSet::single(LabelId(9));
        assert!(s.contains(LabelId(9)));
        assert!(!s.contains(LabelId(8)));
    }

    #[test]
    fn interner_roundtrip() {
        let mut it = LabelInterner::new();
        let a = it.intern("User");
        let b = it.intern("Post");
        assert_ne!(a, b);
        assert_eq!(it.intern("User"), a);
        assert_eq!(it.get("Post"), Some(b));
        assert_eq!(it.get("Nope"), None);
        assert_eq!(it.name(a), Some("User"));
        assert_eq!(it.len(), 2);
    }
}
