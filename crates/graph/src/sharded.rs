//! Hash-partitioned graph storage for the sharded execution runtime.
//!
//! Vertices are assigned to shards by [`shard_of`], a fixed avalanching
//! hash of the vertex id — deterministic across runs and platforms, so a
//! given stream always partitions the same way. Every shard slice
//! replicates the (small) vertex/label table; edges are partitioned:
//! an edge `src → dst` is stored in owner(`src`)'s slice and, when the
//! endpoints hash to different shards, *mirrored* into owner(`dst`)'s
//! slice — the same exchange-key replication distributed dataflow joins
//! use. The resulting invariant is what [`ShardView`] relies on:
//!
//! * slice\[owner(v)\].out\[v\] holds **all** out-edges of `v` (primaries),
//! * slice\[owner(v)\].in\[v\] holds **all** in-edges of `v`
//!   (same-shard primaries plus mirrors of cross-shard edges).
//!
//! [`ShardView`] implements [`GraphView`] by routing each read to the
//! slice owning the queried endpoint, so every read returns exactly what
//! a single unsharded [`DynamicGraph`] would.

use crate::dynamic_graph::DynamicGraph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;
use crate::view::GraphView;
use crate::{AdjacencyMode, LabeledNeighbors, MatchingNeighbors};

/// Owning shard of vertex `v` among `shards` partitions.
///
/// SplitMix64-style finalizer over the raw id: avalanching (consecutive
/// ids scatter), deterministic (no per-process seed), and independent of
/// `std` hasher internals.
#[inline]
pub fn shard_of(v: VertexId, shards: u32) -> u32 {
    if shards <= 1 {
        return 0;
    }
    let mut x = (v.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards as u64) as u32
}

/// A data graph hash-partitioned into per-shard [`DynamicGraph`] slices.
pub struct ShardedGraph {
    slices: Vec<DynamicGraph>,
    shards: u32,
    cross_shard_edges: u64,
}

impl Default for ShardedGraph {
    /// An empty single-slice graph (placeholder value for `mem::take`).
    fn default() -> Self {
        ShardedGraph { slices: vec![DynamicGraph::new()], shards: 1, cross_shard_edges: 0 }
    }
}

impl ShardedGraph {
    /// Partition `g0` into `shards` slices (vertices replicated, edges
    /// routed to owner(src) and mirrored to owner(dst) when they differ).
    pub fn from_graph(g0: &DynamicGraph, shards: usize) -> Self {
        let shards = shards.max(1);
        if shards == 1 {
            return ShardedGraph::from_single(g0.clone());
        }
        let mut sg = ShardedGraph {
            slices: (0..shards).map(|_| DynamicGraph::new()).collect(),
            shards: shards as u32,
            cross_shard_edges: 0,
        };
        for v in g0.vertices() {
            sg.ensure_vertex(v, g0.labels(v).clone());
        }
        for e in g0.edges() {
            sg.insert_edge(e.src, e.label, e.dst);
        }
        sg
    }

    /// Wraps an owned graph as the one slice of a single-shard partition:
    /// no routing, no mirrors, no copy.
    pub fn from_single(g: DynamicGraph) -> Self {
        ShardedGraph { slices: vec![g], shards: 1, cross_shard_edges: 0 }
    }

    /// Number of shard slices.
    pub fn shard_count(&self) -> usize {
        self.slices.len()
    }

    /// The partition slice owned by shard `s`.
    pub fn slice(&self, s: usize) -> &DynamicGraph {
        &self.slices[s]
    }

    /// Read-only routing view equivalent to the unsharded graph.
    pub fn view(&self) -> ShardView<'_> {
        ShardView { slices: &self.slices, shards: self.shards }
    }

    /// Vertex slots (identical across slices — vertices are replicated).
    pub fn vertex_count(&self) -> usize {
        self.slices[0].vertex_count()
    }

    /// Live cross-shard (mirrored) edge count.
    pub fn cross_shard_edges(&self) -> u64 {
        self.cross_shard_edges
    }

    /// Replicate a vertex into every slice. Returns true iff new anywhere.
    pub fn ensure_vertex(&mut self, v: VertexId, labels: LabelSet) -> bool {
        let mut added = false;
        for slice in &mut self.slices {
            added |= slice.ensure_vertex(v, labels.clone());
        }
        added
    }

    /// True iff the triple exists (probed in owner(src)'s slice).
    pub fn has_edge(&self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        self.slices[shard_of(src, self.shards) as usize].has_edge(src, label, dst)
    }

    /// Insert an edge: primary copy at owner(src), mirror at owner(dst)
    /// when the endpoints hash to different shards. Returns
    /// `(inserted, crossed)` — `crossed` is true for a newly inserted
    /// edge whose endpoints live on different shards.
    pub fn insert_edge(&mut self, src: VertexId, label: LabelId, dst: VertexId) -> (bool, bool) {
        let s_src = shard_of(src, self.shards) as usize;
        let s_dst = shard_of(dst, self.shards) as usize;
        let inserted = self.slices[s_src].insert_edge(src, label, dst);
        let crossed = inserted && s_src != s_dst;
        if crossed {
            let mirrored = self.slices[s_dst].insert_edge(src, label, dst);
            debug_assert!(mirrored, "mirror slice out of sync on insert");
            self.cross_shard_edges += 1;
        }
        (inserted, crossed)
    }

    /// Delete an edge from its primary slice and, for cross-shard edges,
    /// from the mirror slice. Returns `(deleted, crossed)`.
    pub fn delete_edge(&mut self, src: VertexId, label: LabelId, dst: VertexId) -> (bool, bool) {
        let s_src = shard_of(src, self.shards) as usize;
        let s_dst = shard_of(dst, self.shards) as usize;
        let deleted = self.slices[s_src].delete_edge(src, label, dst);
        let crossed = deleted && s_src != s_dst;
        if crossed {
            let mirrored = self.slices[s_dst].delete_edge(src, label, dst);
            debug_assert!(mirrored, "mirror slice out of sync on delete");
            self.cross_shard_edges = self.cross_shard_edges.saturating_sub(1);
        }
        (deleted, crossed)
    }
}

/// Read-only [`GraphView`] over a [`ShardedGraph`]: out-side reads route
/// to owner(src), in-side reads to owner(dst), label reads to slice 0
/// (vertices are replicated everywhere). Equivalent, read for read, to
/// the unsharded graph.
#[derive(Clone, Copy)]
pub struct ShardView<'a> {
    slices: &'a [DynamicGraph],
    shards: u32,
}

impl<'a> ShardView<'a> {
    #[inline]
    fn owner(&self, v: VertexId) -> &'a DynamicGraph {
        &self.slices[shard_of(v, self.shards) as usize]
    }
}

impl GraphView for ShardView<'_> {
    #[inline]
    fn labels(&self, v: VertexId) -> &LabelSet {
        self.slices[0].labels(v)
    }

    #[inline]
    fn vertex_count(&self) -> usize {
        self.slices[0].vertex_count()
    }

    #[inline]
    fn has_edge_matching(&self, src: VertexId, dst: VertexId, qlabel: Option<LabelId>) -> bool {
        self.owner(src).has_edge_matching(src, dst, qlabel)
    }

    #[inline]
    fn count_edges_matching(&self, src: VertexId, dst: VertexId, qlabel: Option<LabelId>) -> usize {
        self.owner(src).count_edges_matching(src, dst, qlabel)
    }

    #[inline]
    fn out_neighbors_labeled(&self, v: VertexId, label: LabelId) -> LabeledNeighbors<'_> {
        self.owner(v).out_neighbors_labeled(v, label)
    }

    #[inline]
    fn in_neighbors_labeled(&self, v: VertexId, label: LabelId) -> LabeledNeighbors<'_> {
        self.owner(v).in_neighbors_labeled(v, label)
    }

    #[inline]
    fn out_neighbors_matching(
        &self,
        v: VertexId,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_> {
        self.owner(v).out_neighbors_matching(v, qlabel, mode)
    }

    #[inline]
    fn in_neighbors_matching(
        &self,
        v: VertexId,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_> {
        self.owner(v).in_neighbors_matching(v, qlabel, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_deterministic_and_spread() {
        for s in [1u32, 2, 4, 8] {
            let mut seen = vec![0usize; s as usize];
            for i in 0..256 {
                let a = shard_of(VertexId(i), s);
                assert_eq!(a, shard_of(VertexId(i), s));
                assert!(a < s);
                seen[a as usize] += 1;
            }
            // every shard owns a non-trivial share of 256 consecutive ids
            assert!(seen.iter().all(|&c| c > 256 / (s as usize) / 4));
        }
        assert_eq!(shard_of(VertexId(17), 1), 0);
    }

    #[test]
    fn sharded_view_matches_unsharded_reads() {
        let mut g = DynamicGraph::new();
        let l0 = LabelId(0);
        let l1 = LabelId(1);
        for i in 0..32u32 {
            g.ensure_vertex(VertexId(i), LabelSet::single(LabelId(i % 3)));
        }
        for i in 0..32u32 {
            g.insert_edge(VertexId(i), l0, VertexId((i * 7 + 3) % 32));
            g.insert_edge(VertexId(i), l1, VertexId((i * 5 + 1) % 32));
        }
        for shards in [1usize, 2, 4, 8] {
            let sg = ShardedGraph::from_graph(&g, shards);
            let view = sg.view();
            assert_eq!(GraphView::vertex_count(&view), g.vertex_count());
            for v in g.vertices() {
                assert_eq!(GraphView::labels(&view, v), DynamicGraph::labels(&g, v));
                for l in [l0, l1] {
                    let a: Vec<_> = g.out_neighbors_labeled(v, l).collect();
                    let b: Vec<_> = GraphView::out_neighbors_labeled(&view, v, l).collect();
                    assert_eq!(a, b, "out shards={shards} v={v:?}");
                    let a: Vec<_> = g.in_neighbors_labeled(v, l).collect();
                    let b: Vec<_> = GraphView::in_neighbors_labeled(&view, v, l).collect();
                    assert_eq!(a, b, "in shards={shards} v={v:?}");
                }
                for w in g.vertices() {
                    for ql in [Some(l0), Some(l1), None] {
                        assert_eq!(
                            GraphView::has_edge_matching(&view, v, w, ql),
                            g.has_edge_matching(v, w, ql)
                        );
                        assert_eq!(
                            GraphView::count_edges_matching(&view, v, w, ql),
                            g.count_edges_matching(v, w, ql)
                        );
                    }
                }
            }
            if shards > 1 {
                assert!(sg.cross_shard_edges() > 0);
            }
            // delete everything through the sharded path; mirrors must drain
            let mut sg = sg;
            for e in g.edges() {
                let (deleted, _) = sg.delete_edge(e.src, e.label, e.dst);
                assert!(deleted);
            }
            assert_eq!(sg.cross_shard_edges(), 0);
            for s in 0..shards {
                assert_eq!(sg.slice(s).edge_count(), 0);
            }
        }
    }
}
