//! Read-only graph abstraction over which the matching engine's
//! evaluation path is generic.
//!
//! The engine's DCG maintenance and match enumeration only ever *read*
//! the data graph, and only through a small surface: vertex labels,
//! edge-existence probes, and label-filtered adjacency runs. Abstracting
//! that surface behind [`GraphView`] lets the same monomorphized code run
//! against a single [`DynamicGraph`] (the unsharded engine; the impl is
//! pure inline delegation, so there is no indirection cost) or against a
//! [`crate::ShardView`] that routes each read to the partition slice
//! owning the queried endpoint.

use crate::adjacency::{AdjacencyMode, LabeledNeighbors, MatchingNeighbors};
use crate::dynamic_graph::DynamicGraph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// Read-only view of a data graph, sufficient for DCG maintenance and
/// match enumeration. `Sync` so scoped enumeration workers can share one
/// view by reference.
pub trait GraphView: Sync {
    /// Labels of vertex `v`.
    fn labels(&self, v: VertexId) -> &LabelSet;
    /// Number of vertex slots (vertex ids are dense `0..vertex_count`).
    fn vertex_count(&self) -> usize;
    /// True iff an edge `src → dst` matching the optional query label exists.
    fn has_edge_matching(&self, src: VertexId, dst: VertexId, qlabel: Option<LabelId>) -> bool;
    /// Number of parallel `src → dst` edges matching the query label.
    fn count_edges_matching(&self, src: VertexId, dst: VertexId, qlabel: Option<LabelId>) -> usize;
    /// Out-neighbors of `v` over edges labeled exactly `label`.
    fn out_neighbors_labeled(&self, v: VertexId, label: LabelId) -> LabeledNeighbors<'_>;
    /// In-neighbors of `v` over edges labeled exactly `label`.
    fn in_neighbors_labeled(&self, v: VertexId, label: LabelId) -> LabeledNeighbors<'_>;
    /// Out-neighbors of `v` matching an optional query-edge label.
    fn out_neighbors_matching(
        &self,
        v: VertexId,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_>;
    /// In-neighbors of `v` matching an optional query-edge label.
    fn in_neighbors_matching(
        &self,
        v: VertexId,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_>;
}

impl GraphView for DynamicGraph {
    #[inline]
    fn labels(&self, v: VertexId) -> &LabelSet {
        DynamicGraph::labels(self, v)
    }

    #[inline]
    fn vertex_count(&self) -> usize {
        DynamicGraph::vertex_count(self)
    }

    #[inline]
    fn has_edge_matching(&self, src: VertexId, dst: VertexId, qlabel: Option<LabelId>) -> bool {
        DynamicGraph::has_edge_matching(self, src, dst, qlabel)
    }

    #[inline]
    fn count_edges_matching(&self, src: VertexId, dst: VertexId, qlabel: Option<LabelId>) -> usize {
        DynamicGraph::count_edges_matching(self, src, dst, qlabel)
    }

    #[inline]
    fn out_neighbors_labeled(&self, v: VertexId, label: LabelId) -> LabeledNeighbors<'_> {
        DynamicGraph::out_neighbors_labeled(self, v, label)
    }

    #[inline]
    fn in_neighbors_labeled(&self, v: VertexId, label: LabelId) -> LabeledNeighbors<'_> {
        DynamicGraph::in_neighbors_labeled(self, v, label)
    }

    #[inline]
    fn out_neighbors_matching(
        &self,
        v: VertexId,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_> {
        DynamicGraph::out_neighbors_matching(self, v, qlabel, mode)
    }

    #[inline]
    fn in_neighbors_matching(
        &self,
        v: VertexId,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_> {
        DynamicGraph::in_neighbors_matching(self, v, qlabel, mode)
    }
}
