//! Label-partitioned per-vertex adjacency lists.
//!
//! Every edge-transition in the matching engines asks one of two questions
//! about a data vertex `v`: "which neighbors are reachable over an edge with
//! label `l`?" (concrete query-edge label — the overwhelmingly common case)
//! or "which neighbors at all?" (wildcard query edge). A flat neighbor list
//! answers the first question in O(deg(v)), which dominates DCG construction
//! on high-degree hubs in skewed graphs. This module keeps each adjacency
//! list partitioned by edge label so the first question is answered with a
//! run lookup plus a contiguous slice walk.
//!
//! Two representations, chosen per vertex by an **adaptive policy**:
//!
//! * **Small** — a single inline `Vec<(LabelId, VertexId)>` kept sorted by
//!   `(label, neighbor)`. Label groups are contiguous runs; short lists
//!   locate them with a predictable linear scan, longer ones with
//!   `partition_point` (see [`LINEAR_RUN_CUTOFF`] — on a handful of entries
//!   the branchy halving of a binary search *loses* to walking forward,
//!   which is why the first, degree-only promotion rule made uniform
//!   workloads slower under the index than under a flat scan). One
//!   allocation, best cache behavior, and the common case: most vertices in
//!   real streams stay small.
//! * **Promoted** — the list is split into a per-label table of neighbor
//!   vectors (each sorted). Lookup binary-searches the label table and
//!   returns the group slice directly; insert/remove shift only within one
//!   group instead of the whole list.
//!
//! **Promotion policy.** Raw degree is the wrong trigger: a vertex with one
//! or two balanced label runs gains nothing from the group table (its runs
//! are already contiguous and trivially located) but pays the pointer chase
//! and per-group allocations forever. Promotion is therefore driven by two
//! cheap per-vertex counters maintained on insert/delete:
//!
//! * `distinct` — the number of distinct labels currently present;
//! * `max_run` — a high-water mark of the longest run observed (monotone
//!   within one `Small` lifetime; deletions do not lower it, which only
//!   delays promotion and never causes it).
//!
//! The rules, checked after each insert (see [`Adjacency::should_promote`]):
//!
//! * `distinct ≤ 1`: never promote — a single run *is* the flat list.
//! * `distinct ≥ `[`DIVERSE_LABELS`]: promote past [`PROMOTE_DEGREE`], the
//!   classic hub shape (many groups, each found in O(log)).
//! * `distinct == 2`: promote past [`PROMOTE_DEGREE_SKEWED`], or earlier —
//!   past `PROMOTE_DEGREE + `[`PROMOTE_HYSTERESIS`] — when one run holds
//!   ≥ 7/8 of the entries (the hub-with-rare-probe-label shape, where the
//!   minority run is what lookups want and majority-run inserts keep
//!   shifting it).
//!
//! Promotion remains one-way (no demotion on shrink): oscillating around
//! any threshold must not cause repacking churn, so the hysteresis band is
//! one-sided — crossing up commits, crossing back down never undoes. For
//! the same reason a group emptied by deletions is kept as a tombstone with
//! its capacity: steady-state delete/re-insert cycles stay allocation-free.
//!
//! Both representations iterate in `(label, neighbor)` order, so promotion
//! never changes observable enumeration order (pinned by a randomized
//! property test below). The engines' outputs are therefore independent of
//! the representation *and* of the access path — which is what lets
//! [`AdjacencyMode::FlatScan`] serve as a faithful ablation baseline: same
//! storage, same order, but every lookup walks the whole list and filters,
//! exactly like the pre-index code.

use crate::ids::{LabelId, VertexId};

/// Degree past which a *label-diverse* vertex (≥ [`DIVERSE_LABELS`]
/// distinct labels) switches from the inline sorted representation to the
/// per-label group table. Below it, `memmove`-style inserts into one small
/// vector beat pointer chasing; 24 entries keeps `Small` within a couple of
/// cache lines.
pub const PROMOTE_DEGREE: usize = 24;

/// Distinct-label count at which a vertex counts as label-diverse and
/// promotes by the plain [`PROMOTE_DEGREE`] rule. With fewer labels the
/// group table mostly replicates the flat list, so promotion is deferred
/// (`2` labels) or disabled (`≤ 1`).
pub const DIVERSE_LABELS: u32 = 3;

/// Degree past which even a two-label vertex promotes regardless of skew:
/// by this size per-group shifting beats whole-list `memmove`s no matter
/// how the runs are balanced.
pub const PROMOTE_DEGREE_SKEWED: usize = 96;

/// Width of the one-sided hysteresis band above [`PROMOTE_DEGREE`] for the
/// skew-triggered two-label rule: a vertex must exceed
/// `PROMOTE_DEGREE + PROMOTE_HYSTERESIS` before skew can promote it, so
/// churn at the classic boundary never changes layout decisions.
pub const PROMOTE_HYSTERESIS: usize = 8;

/// Entry count at or below which `Small` locates label runs by linear scan
/// instead of `partition_point`: the forward scan is branch-predictable and
/// early-exits on the sorted labels, beating binary search on short lists
/// (the fix for the `adjacency_lookup/uniform` regression).
pub const LINEAR_RUN_CUTOFF: usize = 32;

/// How scan sites access the adjacency index.
///
/// Storage is always label-partitioned; this only selects the *access path*,
/// so both modes produce byte-identical results and the flag is a pure
/// ablation switch for benchmarking.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AdjacencyMode {
    /// Label-qualified lookups: locate the label run, walk only it.
    #[default]
    Indexed,
    /// Pre-index behavior: walk the entire neighbor list and filter by
    /// label. Kept for head-to-head benchmarks.
    FlatScan,
}

/// One label's neighbor group in the promoted representation.
#[derive(Clone, Debug)]
pub(crate) struct LabelGroup {
    label: LabelId,
    /// Sorted, duplicate-free (the graph's edge set already dedups triples).
    /// May be empty: emptied groups are kept as tombstones so re-inserting
    /// the same label never allocates.
    neighbors: Vec<VertexId>,
}

/// A single vertex's adjacency in one direction.
#[derive(Clone, Debug)]
pub(crate) enum Adjacency {
    /// Inline list sorted by `(label, neighbor)`, with the promotion-policy
    /// counters (see the module docs).
    Small {
        entries: Vec<(LabelId, VertexId)>,
        /// Distinct labels currently present.
        distinct: u32,
        /// High-water mark of the longest run observed (monotone).
        max_run: u32,
    },
    /// Per-label group table sorted by label; `len` caches the total degree.
    Promoted { len: usize, groups: Vec<LabelGroup> },
}

impl Default for Adjacency {
    fn default() -> Self {
        Adjacency::Small { entries: Vec::new(), distinct: 0, max_run: 0 }
    }
}

/// `[lo, hi)` bounds of `label`'s run in a `(label, neighbor)`-sorted list:
/// linear scan under [`LINEAR_RUN_CUTOFF`], `partition_point` above.
#[inline]
fn run_bounds(entries: &[(LabelId, VertexId)], label: LabelId) -> (usize, usize) {
    if entries.len() <= LINEAR_RUN_CUTOFF {
        let mut lo = 0;
        while lo < entries.len() && entries[lo].0 < label {
            lo += 1;
        }
        let mut hi = lo;
        while hi < entries.len() && entries[hi].0 == label {
            hi += 1;
        }
        (lo, hi)
    } else {
        let lo = entries.partition_point(|&(l, _)| l < label);
        let hi = lo + entries[lo..].partition_point(|&(l, _)| l == label);
        (lo, hi)
    }
}

impl Adjacency {
    /// Total number of `(label, neighbor)` entries.
    pub(crate) fn len(&self) -> usize {
        match self {
            Adjacency::Small { entries, .. } => entries.len(),
            Adjacency::Promoted { len, .. } => *len,
        }
    }

    /// True once this list has switched to the per-label group table.
    pub(crate) fn is_promoted(&self) -> bool {
        matches!(self, Adjacency::Promoted { .. })
    }

    /// The adaptive promotion rule over the maintained counters (module
    /// docs).
    fn should_promote(len: usize, distinct: u32, max_run: u32) -> bool {
        match distinct {
            0 | 1 => false,
            2 => {
                len > PROMOTE_DEGREE_SKEWED
                    || (len > PROMOTE_DEGREE + PROMOTE_HYSTERESIS
                        && max_run as usize * 8 >= len * 7)
            }
            _ => len > PROMOTE_DEGREE,
        }
    }

    /// Inserts `(label, v)`. The caller (the graph's edge set) guarantees the
    /// pair is not already present.
    pub(crate) fn insert(&mut self, label: LabelId, v: VertexId) {
        match self {
            Adjacency::Small { entries, distinct, max_run } => {
                let pos = entries
                    .binary_search(&(label, v))
                    .expect_err("duplicate adjacency entry (edge set out of sync)");
                let new_label = (pos == 0 || entries[pos - 1].0 != label)
                    && (pos == entries.len() || entries[pos].0 != label);
                entries.insert(pos, (label, v));
                *distinct += u32::from(new_label);
                let (lo, hi) = run_bounds(entries, label);
                *max_run = (*max_run).max((hi - lo) as u32);
                if Self::should_promote(entries.len(), *distinct, *max_run) {
                    self.promote();
                }
            }
            Adjacency::Promoted { len, groups } => {
                match groups.binary_search_by_key(&label, |g| g.label) {
                    Ok(i) => {
                        let neighbors = &mut groups[i].neighbors;
                        let pos = neighbors
                            .binary_search(&v)
                            .expect_err("duplicate adjacency entry (edge set out of sync)");
                        neighbors.insert(pos, v);
                    }
                    Err(i) => groups.insert(i, LabelGroup { label, neighbors: vec![v] }),
                }
                *len += 1;
            }
        }
    }

    /// Removes `(label, v)`; returns `false` if absent. O(log + |group|) in
    /// the promoted representation — the group is located by binary search
    /// and only its entries shift.
    pub(crate) fn remove(&mut self, label: LabelId, v: VertexId) -> bool {
        match self {
            Adjacency::Small { entries, distinct, .. } => {
                match entries.binary_search(&(label, v)) {
                    Ok(pos) => {
                        entries.remove(pos);
                        let gone = (pos == 0 || entries[pos - 1].0 != label)
                            && (pos == entries.len() || entries[pos].0 != label);
                        *distinct -= u32::from(gone);
                        // `max_run` stays at its high-water mark: lowering it
                        // could only *allow* a promotion that shrinking just
                        // argued against, and recomputing it per delete is
                        // exactly the churn the counters exist to avoid.
                        true
                    }
                    Err(_) => false,
                }
            }
            Adjacency::Promoted { len, groups } => {
                let Ok(i) = groups.binary_search_by_key(&label, |g| g.label) else {
                    return false;
                };
                let neighbors = &mut groups[i].neighbors;
                match neighbors.binary_search(&v) {
                    Ok(pos) => {
                        // Emptied groups stay as tombstones (see module docs).
                        neighbors.remove(pos);
                        *len -= 1;
                        true
                    }
                    Err(_) => false,
                }
            }
        }
    }

    fn promote(&mut self) {
        let Adjacency::Small { entries, .. } = self else { return };
        let entries = std::mem::take(entries);
        let len = entries.len();
        let mut groups: Vec<LabelGroup> = Vec::new();
        for (label, v) in entries {
            match groups.last_mut() {
                Some(g) if g.label == label => g.neighbors.push(v),
                _ => groups.push(LabelGroup { label, neighbors: vec![v] }),
            }
        }
        *self = Adjacency::Promoted { len, groups };
    }

    /// The neighbors reachable over an edge labeled exactly `label`, as a
    /// sorted duplicate-free sequence. O(1) per item after a run lookup
    /// that is linear on short lists and logarithmic past
    /// [`LINEAR_RUN_CUTOFF`].
    pub(crate) fn labeled(&self, label: LabelId) -> LabeledNeighbors<'_> {
        match self {
            Adjacency::Small { entries, .. } => {
                let (lo, hi) = run_bounds(entries, label);
                LabeledNeighbors(LabeledRepr::Pairs(&entries[lo..hi]))
            }
            Adjacency::Promoted { groups, .. } => {
                match groups.binary_search_by_key(&label, |g| g.label) {
                    Ok(i) => LabeledNeighbors(LabeledRepr::Ids(&groups[i].neighbors)),
                    Err(_) => LabeledNeighbors(LabeledRepr::Ids(&[])),
                }
            }
        }
    }

    /// True iff at least one edge with `label` leaves over this list.
    pub(crate) fn has_label(&self, label: LabelId) -> bool {
        !self.labeled(label).is_empty()
    }

    /// All `(neighbor, edge label)` pairs in `(label, neighbor)` order.
    pub(crate) fn iter(&self) -> Neighbors<'_> {
        match self {
            Adjacency::Small { entries, .. } => Neighbors(NeighborsRepr::Small(entries.iter())),
            Adjacency::Promoted { groups, .. } => Neighbors(NeighborsRepr::Promoted {
                groups: groups.iter(),
                label: LabelId(0),
                current: [].iter(),
            }),
        }
    }

    /// Neighbors matching an optional query-edge label, via the access path
    /// selected by `mode`. Yields in `(label, neighbor)` order either way.
    ///
    /// `Indexed` is itself adaptive: on an inline list at or below
    /// [`LINEAR_RUN_CUTOFF`] a filtering scan is cheaper than locating the
    /// run first (the lookup walks the same few entries and then pays the
    /// run-slice setup on top — measurably slower on uniform low-degree
    /// graphs), so the index path only engages for promoted tables and
    /// long inline lists, where skipping foreign-label entries wins.
    pub(crate) fn matching(
        &self,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_> {
        match self {
            // One match on the representation: the dominant short-inline
            // case decides with a single length compare and builds the
            // same slice iterator FlatScan does.
            Adjacency::Small { entries, .. } => {
                if entries.len() > LINEAR_RUN_CUTOFF && mode == AdjacencyMode::Indexed {
                    if let Some(label) = qlabel {
                        let (lo, hi) = run_bounds(entries, label);
                        return MatchingNeighbors(MatchingRepr::Labeled(LabeledNeighbors(
                            LabeledRepr::Pairs(&entries[lo..hi]),
                        )));
                    }
                }
                MatchingNeighbors(MatchingRepr::Scan {
                    iter: Neighbors(NeighborsRepr::Small(entries.iter())),
                    qlabel,
                })
            }
            Adjacency::Promoted { .. } => match (qlabel, mode) {
                (Some(label), AdjacencyMode::Indexed) => {
                    MatchingNeighbors(MatchingRepr::Labeled(self.labeled(label)))
                }
                (qlabel, _) => MatchingNeighbors(MatchingRepr::Scan { iter: self.iter(), qlabel }),
            },
        }
    }

    /// True iff some entry points at `v` (any label).
    pub(crate) fn any_to(&self, v: VertexId) -> bool {
        match self {
            Adjacency::Small { entries, .. } => entries.iter().any(|&(_, w)| w == v),
            Adjacency::Promoted { groups, .. } => {
                groups.iter().any(|g| crate::intersect::contains_sorted(&g.neighbors, v))
            }
        }
    }

    /// Number of parallel edges (distinct labels) pointing at `v`.
    pub(crate) fn count_to(&self, v: VertexId) -> usize {
        match self {
            Adjacency::Small { entries, .. } => entries.iter().filter(|&&(_, w)| w == v).count(),
            Adjacency::Promoted { groups, .. } => {
                groups.iter().filter(|g| crate::intersect::contains_sorted(&g.neighbors, v)).count()
            }
        }
    }

    /// Distinct labels present (tombstoned groups excluded), with group
    /// sizes, in label order.
    pub(crate) fn label_runs(&self) -> LabelRuns<'_> {
        match self {
            Adjacency::Small { entries, .. } => LabelRuns(LabelRunsRepr::Small(entries)),
            Adjacency::Promoted { groups, .. } => LabelRuns(LabelRunsRepr::Promoted(groups.iter())),
        }
    }
}

/// Iterator over one label group's neighbors (sorted, duplicate-free).
#[derive(Clone, Copy)]
pub struct LabeledNeighbors<'a>(LabeledRepr<'a>);

#[derive(Clone, Copy)]
enum LabeledRepr<'a> {
    /// Slice of the inline `(label, neighbor)` list (one label run).
    Pairs(&'a [(LabelId, VertexId)]),
    /// Slice of a promoted group's neighbor vector.
    Ids(&'a [VertexId]),
}

impl<'a> LabeledNeighbors<'a> {
    /// Number of neighbors in the group — the label-qualified degree.
    pub fn len(&self) -> usize {
        match self.0 {
            LabeledRepr::Pairs(s) => s.len(),
            LabeledRepr::Ids(s) => s.len(),
        }
    }

    /// True iff the group is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff `v` is in the group: linear under the probe cutoff, binary
    /// search above it (see [`crate::intersect::contains_sorted`]).
    pub fn contains(&self, v: VertexId) -> bool {
        match self.0 {
            LabeledRepr::Pairs(s) => {
                if s.len() <= crate::intersect::LINEAR_PROBE_CUTOFF {
                    s.iter().any(|&(_, w)| w == v)
                } else {
                    s.binary_search_by_key(&v, |&(_, w)| w).is_ok()
                }
            }
            LabeledRepr::Ids(s) => crate::intersect::contains_sorted(s, v),
        }
    }

    /// The run as a contiguous id slice when the representation stores one
    /// (promoted groups), `None` for the inline pair runs. Intersection
    /// call sites use this to feed big runs to the kernels zero-copy and
    /// only materialize the small inline runs.
    pub fn as_id_slice(&self) -> Option<&'a [VertexId]> {
        match self.0 {
            LabeledRepr::Ids(s) => Some(s),
            LabeledRepr::Pairs(_) => None,
        }
    }

    /// Appends the run's ids (already sorted, duplicate-free) to `out`.
    pub fn extend_into(&self, out: &mut Vec<VertexId>) {
        match self.0 {
            LabeledRepr::Pairs(s) => out.extend(s.iter().map(|&(_, w)| w)),
            LabeledRepr::Ids(s) => out.extend_from_slice(s),
        }
    }
}

impl Iterator for LabeledNeighbors<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        match &mut self.0 {
            LabeledRepr::Pairs(s) => {
                let (&(_, v), rest) = s.split_first()?;
                *s = rest;
                Some(v)
            }
            LabeledRepr::Ids(s) => {
                let (&v, rest) = s.split_first()?;
                *s = rest;
                Some(v)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for LabeledNeighbors<'_> {}

/// Iterator over all `(neighbor, edge label)` pairs of one adjacency list,
/// in `(label, neighbor)` order regardless of representation.
#[derive(Clone)]
pub struct Neighbors<'a>(NeighborsRepr<'a>);

#[derive(Clone)]
enum NeighborsRepr<'a> {
    Small(std::slice::Iter<'a, (LabelId, VertexId)>),
    Promoted {
        groups: std::slice::Iter<'a, LabelGroup>,
        label: LabelId,
        current: std::slice::Iter<'a, VertexId>,
    },
}

impl Iterator for Neighbors<'_> {
    type Item = (VertexId, LabelId);

    fn next(&mut self) -> Option<(VertexId, LabelId)> {
        match &mut self.0 {
            NeighborsRepr::Small(iter) => iter.next().map(|&(l, v)| (v, l)),
            NeighborsRepr::Promoted { groups, label, current } => loop {
                if let Some(&v) = current.next() {
                    return Some((v, *label));
                }
                let g = groups.next()?;
                *label = g.label;
                *current = g.neighbors.iter();
            },
        }
    }
}

/// Iterator over neighbors matching an optional query-edge label, through
/// either access path ([`AdjacencyMode`]). Yields neighbor ids.
pub struct MatchingNeighbors<'a>(MatchingRepr<'a>);

enum MatchingRepr<'a> {
    Labeled(LabeledNeighbors<'a>),
    Scan { iter: Neighbors<'a>, qlabel: Option<LabelId> },
}

impl<'a> MatchingNeighbors<'a> {
    /// The labeled run backing this iterator when the access path resolved
    /// to one (concrete label, [`AdjacencyMode::Indexed`]); `None` for the
    /// filtering scan paths.
    pub fn as_run(&self) -> Option<LabeledNeighbors<'a>> {
        match &self.0 {
            MatchingRepr::Labeled(run) => Some(*run),
            MatchingRepr::Scan { .. } => None,
        }
    }
}

impl Iterator for MatchingNeighbors<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        match &mut self.0 {
            MatchingRepr::Labeled(iter) => iter.next(),
            MatchingRepr::Scan { iter, qlabel } => {
                iter.find(|&(_, l)| qlabel.is_none_or(|ql| ql == l)).map(|(v, _)| v)
            }
        }
    }
}

/// Iterator over `(label, group size)` runs; tombstoned (empty) groups are
/// skipped.
pub struct LabelRuns<'a>(LabelRunsRepr<'a>);

enum LabelRunsRepr<'a> {
    Small(&'a [(LabelId, VertexId)]),
    Promoted(std::slice::Iter<'a, LabelGroup>),
}

impl Iterator for LabelRuns<'_> {
    type Item = (LabelId, usize);

    fn next(&mut self) -> Option<(LabelId, usize)> {
        match &mut self.0 {
            LabelRunsRepr::Small(entries) => {
                let (&(label, _), _) = entries.split_first()?;
                let run = entries.partition_point(|&(l, _)| l == label);
                *entries = &entries[run..];
                Some((label, run))
            }
            LabelRunsRepr::Promoted(groups) => {
                for g in groups.by_ref() {
                    if !g.neighbors.is_empty() {
                        return Some((g.label, g.neighbors.len()));
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn collect(a: &Adjacency) -> Vec<(VertexId, LabelId)> {
        a.iter().collect()
    }

    #[test]
    fn small_insert_keeps_label_runs_sorted() {
        let mut a = Adjacency::default();
        a.insert(l(2), v(5));
        a.insert(l(1), v(9));
        a.insert(l(2), v(3));
        a.insert(l(1), v(1));
        assert!(!a.is_promoted());
        assert_eq!(collect(&a), vec![(v(1), l(1)), (v(9), l(1)), (v(3), l(2)), (v(5), l(2))]);
        assert_eq!(a.labeled(l(2)).collect::<Vec<_>>(), vec![v(3), v(5)]);
        assert_eq!(a.labeled(l(1)).len(), 2);
        assert!(a.labeled(l(7)).is_empty());
        assert!(a.has_label(l(1)));
        assert!(!a.has_label(l(0)));
        assert_eq!(a.label_runs().collect::<Vec<_>>(), vec![(l(1), 2), (l(2), 2)]);
    }

    #[test]
    fn promotion_preserves_order_and_lookups() {
        let mut a = Adjacency::default();
        // Interleave labels so groups are non-trivial; cross the threshold.
        for i in 0..(PROMOTE_DEGREE as u32 + 8) {
            a.insert(l(i % 3), v(100 - i));
        }
        assert!(a.is_promoted());
        assert_eq!(a.len(), PROMOTE_DEGREE + 8);
        let got = collect(&a);
        let mut want = got.clone();
        want.sort_by_key(|&(w, lab)| (lab, w));
        assert_eq!(got, want, "promoted iteration stays (label, neighbor)-sorted");
        for lab in 0..3 {
            let group: Vec<_> = a.labeled(l(lab)).collect();
            let flat: Vec<_> =
                got.iter().filter(|&&(_, la)| la == l(lab)).map(|&(w, _)| w).collect();
            assert_eq!(group, flat);
            assert!(group.windows(2).all(|w| w[0] < w[1]), "group sorted");
        }
    }

    #[test]
    fn single_label_vertex_never_promotes() {
        let mut a = Adjacency::default();
        for i in 0..(PROMOTE_DEGREE_SKEWED as u32 * 4) {
            a.insert(l(5), v(i));
        }
        assert!(!a.is_promoted(), "one run IS the flat list — promotion gains nothing");
        assert_eq!(a.labeled(l(5)).len(), PROMOTE_DEGREE_SKEWED * 4);
        assert!(a.labeled(l(5)).as_id_slice().is_none());
    }

    #[test]
    fn balanced_two_label_vertex_promotes_only_at_hard_cap() {
        let mut a = Adjacency::default();
        for i in 0..PROMOTE_DEGREE_SKEWED as u32 {
            a.insert(l(i % 2), v(i));
        }
        assert!(!a.is_promoted(), "balanced two-run list stays flat past PROMOTE_DEGREE");
        a.insert(l(0), v(1000));
        assert!(a.is_promoted(), "hard cap still bounds the flat memmove cost");
    }

    #[test]
    fn skewed_two_label_vertex_promotes_early() {
        let mut a = Adjacency::default();
        // One rare entry + a dominating run: the hub-with-probe-label shape.
        a.insert(l(9), v(0));
        let mut i = 0;
        while !a.is_promoted() {
            a.insert(l(1), v(1 + i));
            i += 1;
            assert!((a.len()) <= PROMOTE_DEGREE_SKEWED, "skew rule must fire before the cap");
        }
        assert!(
            a.len() > PROMOTE_DEGREE + PROMOTE_HYSTERESIS,
            "skew promotion respects the hysteresis band (len {})",
            a.len()
        );
        assert_eq!(a.labeled(l(9)).collect::<Vec<_>>(), vec![v(0)]);
        assert!(a.labeled(l(1)).as_id_slice().is_some(), "promoted groups expose id slices");
    }

    #[test]
    fn diversity_counter_tracks_inserts_and_removes() {
        let mut a = Adjacency::default();
        for lab in 0..DIVERSE_LABELS {
            a.insert(l(lab), v(1));
            a.insert(l(lab), v(2));
        }
        // Draining one label's run entirely must lower the diversity count
        // (observable through label_runs, which skips absent labels).
        a.remove(l(0), v(1));
        a.remove(l(0), v(2));
        assert_eq!(a.label_runs().count(), DIVERSE_LABELS as usize - 1);
        // Re-inserting brings it back; degree-triggered promotion then uses
        // the restored diversity.
        a.insert(l(0), v(3));
        assert_eq!(a.label_runs().count(), DIVERSE_LABELS as usize);
        for i in 0..PROMOTE_DEGREE as u32 {
            a.insert(l(1), v(100 + i));
        }
        assert!(a.is_promoted(), "diverse vertex promotes past PROMOTE_DEGREE");
    }

    #[test]
    fn promoted_remove_is_per_group_and_tombstones() {
        let mut a = Adjacency::default();
        for i in 0..(PROMOTE_DEGREE as u32 + 3) {
            a.insert(l(i % 3), v(i));
        }
        assert!(a.is_promoted());
        // Drain label 1 entirely.
        let ones: Vec<_> = a.labeled(l(1)).collect();
        for w in &ones {
            assert!(a.remove(l(1), *w));
        }
        assert!(!a.has_label(l(1)));
        assert!(a.labeled(l(1)).is_empty());
        let runs: Vec<_> = a.label_runs().collect();
        assert_eq!(runs, vec![(l(0), 9), (l(2), 9)]);
        // Tombstoned group is reused without reallocating.
        a.insert(l(1), v(999));
        assert_eq!(a.labeled(l(1)).collect::<Vec<_>>(), vec![v(999)]);
        assert!(!a.remove(l(1), v(0)), "absent neighbor");
        assert!(!a.remove(l(9), v(0)), "absent label");
    }

    #[test]
    fn matching_modes_agree() {
        let mut a = Adjacency::default();
        for i in 0..(PROMOTE_DEGREE as u32 + 5) {
            a.insert(l(i % 4), v(i * 7 % 31));
        }
        for qlabel in [None, Some(l(0)), Some(l(3)), Some(l(9))] {
            let indexed: Vec<_> = a.matching(qlabel, AdjacencyMode::Indexed).collect();
            let scanned: Vec<_> = a.matching(qlabel, AdjacencyMode::FlatScan).collect();
            assert_eq!(indexed, scanned, "qlabel {qlabel:?}");
        }
    }

    #[test]
    fn any_and_count_to() {
        let mut a = Adjacency::default();
        a.insert(l(0), v(4));
        a.insert(l(1), v(4));
        a.insert(l(2), v(6));
        assert!(a.any_to(v(4)));
        assert!(!a.any_to(v(5)));
        assert_eq!(a.count_to(v(4)), 2);
        for i in 0..PROMOTE_DEGREE as u32 {
            a.insert(l(3), v(50 + i));
        }
        assert!(a.is_promoted());
        assert!(a.any_to(v(6)));
        assert_eq!(a.count_to(v(4)), 2);
        assert_eq!(a.count_to(v(7)), 0);
    }

    #[test]
    fn labeled_contains_both_reprs() {
        let mut a = Adjacency::default();
        a.insert(l(1), v(2));
        a.insert(l(1), v(8));
        assert!(a.labeled(l(1)).contains(v(8)));
        assert!(!a.labeled(l(1)).contains(v(3)));
        a.insert(l(2), v(4));
        for i in 0..PROMOTE_DEGREE as u32 {
            a.insert(l(0), v(100 + i));
        }
        assert!(a.is_promoted());
        assert!(a.labeled(l(1)).contains(v(2)));
        assert!(!a.labeled(l(0)).contains(v(2)));
        assert!(a.labeled(l(0)).contains(v(100 + PROMOTE_DEGREE as u32 - 1)));
    }

    #[test]
    fn extend_into_matches_iteration_both_reprs() {
        let mut a = Adjacency::default();
        for i in 0..6u32 {
            a.insert(l(i % 2), v(10 + i));
        }
        let run = a.labeled(l(0));
        let mut out = vec![v(1)];
        run.extend_into(&mut out);
        assert_eq!(out[1..], run.collect::<Vec<_>>()[..]);
        for i in 0..PROMOTE_DEGREE as u32 {
            a.insert(l(2), v(100 + i));
        }
        assert!(a.is_promoted());
        let run = a.labeled(l(2));
        let mut out = Vec::new();
        run.extend_into(&mut out);
        assert_eq!(out, run.collect::<Vec<_>>());
        assert_eq!(run.as_id_slice().unwrap(), &out[..]);
    }

    /// Promotion property (tentpole invariant): under any interleaving of
    /// inserts and deletes, enumeration order over every accessor equals
    /// the sorted flat reference — i.e. layout changes never perturb
    /// observable order. Deterministic xorshift so failures replay.
    #[test]
    fn random_churn_never_perturbs_enumeration_order() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rand = move |n: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % n
        };
        let mut a = Adjacency::default();
        let mut reference: Vec<(LabelId, VertexId)> = Vec::new();
        let mut promoted_seen = false;
        for step in 0..6000 {
            // Sweep label diversity over time so the policy's three regimes
            // (never / skew-gated / diverse) all get exercised.
            let nlabels = 1 + (step / 1500) as u32;
            let label = l(rand(nlabels as u64) as u32);
            let vid = v(rand(64) as u32);
            if reference.is_empty() || rand(10) < 6 {
                if !reference.contains(&(label, vid)) {
                    a.insert(label, vid);
                    reference.push((label, vid));
                    reference.sort_unstable();
                }
            } else {
                let i = rand(reference.len() as u64) as usize;
                let (dl, dv) = reference.remove(i);
                assert!(a.remove(dl, dv));
            }
            promoted_seen |= a.is_promoted();
            if step % 64 == 0 || step == 5999 {
                let got: Vec<(LabelId, VertexId)> = a.iter().map(|(w, lab)| (lab, w)).collect();
                assert_eq!(got, reference, "iteration order diverged at step {step}");
                for lab in 0..nlabels {
                    let grp: Vec<_> = a.labeled(l(lab)).collect();
                    let want: Vec<_> = reference
                        .iter()
                        .filter(|&&(gl, _)| gl == l(lab))
                        .map(|&(_, w)| w)
                        .collect();
                    assert_eq!(grp, want, "label {lab} run diverged at step {step}");
                }
                let runs: Vec<_> = a.label_runs().collect();
                let mut want_runs: Vec<(LabelId, usize)> = Vec::new();
                for &(gl, _) in reference.iter() {
                    match want_runs.last_mut() {
                        Some((rl, n)) if *rl == gl => *n += 1,
                        _ => want_runs.push((gl, 1)),
                    }
                }
                assert_eq!(runs, want_runs, "label_runs diverged at step {step}");
            }
        }
        assert!(promoted_seen, "churn never promoted — the property test is vacuous");
    }
}
