//! Label-partitioned per-vertex adjacency lists.
//!
//! Every edge-transition in the matching engines asks one of two questions
//! about a data vertex `v`: "which neighbors are reachable over an edge with
//! label `l`?" (concrete query-edge label — the overwhelmingly common case)
//! or "which neighbors at all?" (wildcard query edge). A flat neighbor list
//! answers the first question in O(deg(v)), which dominates DCG construction
//! on high-degree hubs in skewed graphs. This module keeps each adjacency
//! list partitioned by edge label so the first question is answered with a
//! binary search plus a contiguous slice walk: O(log #labels + |group|).
//!
//! Two representations, chosen per vertex by degree:
//!
//! * **Small** — a single inline `Vec<(LabelId, VertexId)>` kept sorted by
//!   `(label, neighbor)`. Label groups are contiguous runs located with
//!   `partition_point`. One allocation, best cache behavior, and the common
//!   case: most vertices in real streams stay below the threshold.
//! * **Promoted** — once total degree exceeds [`PROMOTE_DEGREE`], the list is
//!   split into a per-label table of neighbor vectors (each sorted). Lookup
//!   binary-searches the label table and returns the group slice directly;
//!   insert/remove shift only within one group instead of the whole list.
//!
//! Promotion is one-way (no demotion on shrink): oscillating around the
//! threshold must not cause repacking churn, and a promoted vertex was hot
//! once and is likely to be hot again. For the same reason a group emptied
//! by deletions is kept as a tombstone with its capacity — steady-state
//! delete/re-insert cycles stay allocation-free.
//!
//! Both representations iterate in `(label, neighbor)` order, so promotion
//! never changes observable enumeration order. The engines' outputs are
//! therefore independent of the representation *and* of the access path —
//! which is what lets [`AdjacencyMode::FlatScan`] serve as a faithful
//! ablation baseline: same storage, same order, but every lookup walks the
//! whole list and filters, exactly like the pre-index code.

use crate::ids::{LabelId, VertexId};

/// Total-degree threshold past which an adjacency list switches from the
/// inline sorted representation to the per-label group table.
///
/// Below it, `memmove`-style inserts into one small vector beat pointer
/// chasing; above it, per-group updates and direct group slices win. 24
/// entries keeps `Small` within a couple of cache lines.
pub const PROMOTE_DEGREE: usize = 24;

/// How scan sites access the adjacency index.
///
/// Storage is always label-partitioned; this only selects the *access path*,
/// so both modes produce byte-identical results and the flag is a pure
/// ablation switch for benchmarking.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AdjacencyMode {
    /// Label-qualified lookups: binary-search the label group, walk only it.
    #[default]
    Indexed,
    /// Pre-index behavior: walk the entire neighbor list and filter by
    /// label. Kept for head-to-head benchmarks.
    FlatScan,
}

/// One label's neighbor group in the promoted representation.
#[derive(Clone, Debug)]
pub(crate) struct LabelGroup {
    label: LabelId,
    /// Sorted, duplicate-free (the graph's edge set already dedups triples).
    /// May be empty: emptied groups are kept as tombstones so re-inserting
    /// the same label never allocates.
    neighbors: Vec<VertexId>,
}

/// A single vertex's adjacency in one direction.
#[derive(Clone, Debug)]
pub(crate) enum Adjacency {
    /// Inline list sorted by `(label, neighbor)`.
    Small(Vec<(LabelId, VertexId)>),
    /// Per-label group table sorted by label; `len` caches the total degree.
    Promoted { len: usize, groups: Vec<LabelGroup> },
}

impl Default for Adjacency {
    fn default() -> Self {
        Adjacency::Small(Vec::new())
    }
}

impl Adjacency {
    /// Total number of `(label, neighbor)` entries.
    pub(crate) fn len(&self) -> usize {
        match self {
            Adjacency::Small(entries) => entries.len(),
            Adjacency::Promoted { len, .. } => *len,
        }
    }

    /// True once this list has switched to the per-label group table.
    pub(crate) fn is_promoted(&self) -> bool {
        matches!(self, Adjacency::Promoted { .. })
    }

    /// Inserts `(label, v)`. The caller (the graph's edge set) guarantees the
    /// pair is not already present.
    pub(crate) fn insert(&mut self, label: LabelId, v: VertexId) {
        match self {
            Adjacency::Small(entries) => {
                let pos = entries
                    .binary_search(&(label, v))
                    .expect_err("duplicate adjacency entry (edge set out of sync)");
                entries.insert(pos, (label, v));
                if entries.len() > PROMOTE_DEGREE {
                    self.promote();
                }
            }
            Adjacency::Promoted { len, groups } => {
                match groups.binary_search_by_key(&label, |g| g.label) {
                    Ok(i) => {
                        let neighbors = &mut groups[i].neighbors;
                        let pos = neighbors
                            .binary_search(&v)
                            .expect_err("duplicate adjacency entry (edge set out of sync)");
                        neighbors.insert(pos, v);
                    }
                    Err(i) => groups.insert(i, LabelGroup { label, neighbors: vec![v] }),
                }
                *len += 1;
            }
        }
    }

    /// Removes `(label, v)`; returns `false` if absent. O(log + |group|) in
    /// the promoted representation — the group is located by binary search
    /// and only its entries shift.
    pub(crate) fn remove(&mut self, label: LabelId, v: VertexId) -> bool {
        match self {
            Adjacency::Small(entries) => match entries.binary_search(&(label, v)) {
                Ok(pos) => {
                    entries.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Adjacency::Promoted { len, groups } => {
                let Ok(i) = groups.binary_search_by_key(&label, |g| g.label) else {
                    return false;
                };
                let neighbors = &mut groups[i].neighbors;
                match neighbors.binary_search(&v) {
                    Ok(pos) => {
                        // Emptied groups stay as tombstones (see module docs).
                        neighbors.remove(pos);
                        *len -= 1;
                        true
                    }
                    Err(_) => false,
                }
            }
        }
    }

    fn promote(&mut self) {
        let Adjacency::Small(entries) = self else { return };
        let entries = std::mem::take(entries);
        let len = entries.len();
        let mut groups: Vec<LabelGroup> = Vec::new();
        for (label, v) in entries {
            match groups.last_mut() {
                Some(g) if g.label == label => g.neighbors.push(v),
                _ => groups.push(LabelGroup { label, neighbors: vec![v] }),
            }
        }
        *self = Adjacency::Promoted { len, groups };
    }

    /// The neighbors reachable over an edge labeled exactly `label`, as a
    /// sorted duplicate-free sequence. O(log) to locate, O(1) per item.
    pub(crate) fn labeled(&self, label: LabelId) -> LabeledNeighbors<'_> {
        match self {
            Adjacency::Small(entries) => {
                let lo = entries.partition_point(|&(l, _)| l < label);
                let hi = lo + entries[lo..].partition_point(|&(l, _)| l == label);
                LabeledNeighbors(LabeledRepr::Pairs(&entries[lo..hi]))
            }
            Adjacency::Promoted { groups, .. } => {
                match groups.binary_search_by_key(&label, |g| g.label) {
                    Ok(i) => LabeledNeighbors(LabeledRepr::Ids(&groups[i].neighbors)),
                    Err(_) => LabeledNeighbors(LabeledRepr::Ids(&[])),
                }
            }
        }
    }

    /// True iff at least one edge with `label` leaves over this list.
    pub(crate) fn has_label(&self, label: LabelId) -> bool {
        !self.labeled(label).is_empty()
    }

    /// All `(neighbor, edge label)` pairs in `(label, neighbor)` order.
    pub(crate) fn iter(&self) -> Neighbors<'_> {
        match self {
            Adjacency::Small(entries) => Neighbors(NeighborsRepr::Small(entries.iter())),
            Adjacency::Promoted { groups, .. } => Neighbors(NeighborsRepr::Promoted {
                groups: groups.iter(),
                label: LabelId(0),
                current: [].iter(),
            }),
        }
    }

    /// Neighbors matching an optional query-edge label, via the access path
    /// selected by `mode`. Yields in `(label, neighbor)` order either way.
    pub(crate) fn matching(
        &self,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_> {
        match (qlabel, mode) {
            (Some(label), AdjacencyMode::Indexed) => {
                MatchingNeighbors(MatchingRepr::Labeled(self.labeled(label)))
            }
            (qlabel, _) => MatchingNeighbors(MatchingRepr::Scan { iter: self.iter(), qlabel }),
        }
    }

    /// True iff some entry points at `v` (any label).
    pub(crate) fn any_to(&self, v: VertexId) -> bool {
        match self {
            Adjacency::Small(entries) => entries.iter().any(|&(_, w)| w == v),
            Adjacency::Promoted { groups, .. } => {
                groups.iter().any(|g| g.neighbors.binary_search(&v).is_ok())
            }
        }
    }

    /// Number of parallel edges (distinct labels) pointing at `v`.
    pub(crate) fn count_to(&self, v: VertexId) -> usize {
        match self {
            Adjacency::Small(entries) => entries.iter().filter(|&&(_, w)| w == v).count(),
            Adjacency::Promoted { groups, .. } => {
                groups.iter().filter(|g| g.neighbors.binary_search(&v).is_ok()).count()
            }
        }
    }

    /// Distinct labels present (tombstoned groups excluded), with group
    /// sizes, in label order.
    pub(crate) fn label_runs(&self) -> LabelRuns<'_> {
        match self {
            Adjacency::Small(entries) => LabelRuns(LabelRunsRepr::Small(entries)),
            Adjacency::Promoted { groups, .. } => LabelRuns(LabelRunsRepr::Promoted(groups.iter())),
        }
    }
}

/// Iterator over one label group's neighbors (sorted, duplicate-free).
#[derive(Clone, Copy)]
pub struct LabeledNeighbors<'a>(LabeledRepr<'a>);

#[derive(Clone, Copy)]
enum LabeledRepr<'a> {
    /// Slice of the inline `(label, neighbor)` list (one label run).
    Pairs(&'a [(LabelId, VertexId)]),
    /// Slice of a promoted group's neighbor vector.
    Ids(&'a [VertexId]),
}

impl LabeledNeighbors<'_> {
    /// Number of neighbors in the group — the label-qualified degree.
    pub fn len(&self) -> usize {
        match self.0 {
            LabeledRepr::Pairs(s) => s.len(),
            LabeledRepr::Ids(s) => s.len(),
        }
    }

    /// True iff the group is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff `v` is in the group. O(log |group|).
    pub fn contains(&self, v: VertexId) -> bool {
        match self.0 {
            LabeledRepr::Pairs(s) => s.binary_search_by_key(&v, |&(_, w)| w).is_ok(),
            LabeledRepr::Ids(s) => s.binary_search(&v).is_ok(),
        }
    }
}

impl Iterator for LabeledNeighbors<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        match &mut self.0 {
            LabeledRepr::Pairs(s) => {
                let (&(_, v), rest) = s.split_first()?;
                *s = rest;
                Some(v)
            }
            LabeledRepr::Ids(s) => {
                let (&v, rest) = s.split_first()?;
                *s = rest;
                Some(v)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for LabeledNeighbors<'_> {}

/// Iterator over all `(neighbor, edge label)` pairs of one adjacency list,
/// in `(label, neighbor)` order regardless of representation.
#[derive(Clone)]
pub struct Neighbors<'a>(NeighborsRepr<'a>);

#[derive(Clone)]
enum NeighborsRepr<'a> {
    Small(std::slice::Iter<'a, (LabelId, VertexId)>),
    Promoted {
        groups: std::slice::Iter<'a, LabelGroup>,
        label: LabelId,
        current: std::slice::Iter<'a, VertexId>,
    },
}

impl Iterator for Neighbors<'_> {
    type Item = (VertexId, LabelId);

    fn next(&mut self) -> Option<(VertexId, LabelId)> {
        match &mut self.0 {
            NeighborsRepr::Small(iter) => iter.next().map(|&(l, v)| (v, l)),
            NeighborsRepr::Promoted { groups, label, current } => loop {
                if let Some(&v) = current.next() {
                    return Some((v, *label));
                }
                let g = groups.next()?;
                *label = g.label;
                *current = g.neighbors.iter();
            },
        }
    }
}

/// Iterator over neighbors matching an optional query-edge label, through
/// either access path ([`AdjacencyMode`]). Yields neighbor ids.
pub struct MatchingNeighbors<'a>(MatchingRepr<'a>);

enum MatchingRepr<'a> {
    Labeled(LabeledNeighbors<'a>),
    Scan { iter: Neighbors<'a>, qlabel: Option<LabelId> },
}

impl Iterator for MatchingNeighbors<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        match &mut self.0 {
            MatchingRepr::Labeled(iter) => iter.next(),
            MatchingRepr::Scan { iter, qlabel } => {
                iter.find(|&(_, l)| qlabel.is_none_or(|ql| ql == l)).map(|(v, _)| v)
            }
        }
    }
}

/// Iterator over `(label, group size)` runs; tombstoned (empty) groups are
/// skipped.
pub struct LabelRuns<'a>(LabelRunsRepr<'a>);

enum LabelRunsRepr<'a> {
    Small(&'a [(LabelId, VertexId)]),
    Promoted(std::slice::Iter<'a, LabelGroup>),
}

impl Iterator for LabelRuns<'_> {
    type Item = (LabelId, usize);

    fn next(&mut self) -> Option<(LabelId, usize)> {
        match &mut self.0 {
            LabelRunsRepr::Small(entries) => {
                let (&(label, _), _) = entries.split_first()?;
                let run = entries.partition_point(|&(l, _)| l == label);
                *entries = &entries[run..];
                Some((label, run))
            }
            LabelRunsRepr::Promoted(groups) => {
                for g in groups.by_ref() {
                    if !g.neighbors.is_empty() {
                        return Some((g.label, g.neighbors.len()));
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn collect(a: &Adjacency) -> Vec<(VertexId, LabelId)> {
        a.iter().collect()
    }

    #[test]
    fn small_insert_keeps_label_runs_sorted() {
        let mut a = Adjacency::default();
        a.insert(l(2), v(5));
        a.insert(l(1), v(9));
        a.insert(l(2), v(3));
        a.insert(l(1), v(1));
        assert!(!a.is_promoted());
        assert_eq!(collect(&a), vec![(v(1), l(1)), (v(9), l(1)), (v(3), l(2)), (v(5), l(2))]);
        assert_eq!(a.labeled(l(2)).collect::<Vec<_>>(), vec![v(3), v(5)]);
        assert_eq!(a.labeled(l(1)).len(), 2);
        assert!(a.labeled(l(7)).is_empty());
        assert!(a.has_label(l(1)));
        assert!(!a.has_label(l(0)));
        assert_eq!(a.label_runs().collect::<Vec<_>>(), vec![(l(1), 2), (l(2), 2)]);
    }

    #[test]
    fn promotion_preserves_order_and_lookups() {
        let mut a = Adjacency::default();
        // Interleave labels so groups are non-trivial; cross the threshold.
        for i in 0..(PROMOTE_DEGREE as u32 + 8) {
            a.insert(l(i % 3), v(100 - i));
        }
        assert!(a.is_promoted());
        assert_eq!(a.len(), PROMOTE_DEGREE + 8);
        let got = collect(&a);
        let mut want = got.clone();
        want.sort_by_key(|&(w, lab)| (lab, w));
        assert_eq!(got, want, "promoted iteration stays (label, neighbor)-sorted");
        for lab in 0..3 {
            let group: Vec<_> = a.labeled(l(lab)).collect();
            let flat: Vec<_> =
                got.iter().filter(|&&(_, la)| la == l(lab)).map(|&(w, _)| w).collect();
            assert_eq!(group, flat);
            assert!(group.windows(2).all(|w| w[0] < w[1]), "group sorted");
        }
    }

    #[test]
    fn promoted_remove_is_per_group_and_tombstones() {
        let mut a = Adjacency::default();
        for i in 0..(PROMOTE_DEGREE as u32 + 2) {
            a.insert(l(i % 2), v(i));
        }
        assert!(a.is_promoted());
        // Drain label 1 entirely.
        let ones: Vec<_> = a.labeled(l(1)).collect();
        for w in &ones {
            assert!(a.remove(l(1), *w));
        }
        assert!(!a.has_label(l(1)));
        assert!(a.labeled(l(1)).is_empty());
        assert_eq!(a.label_runs().collect::<Vec<_>>(), vec![(l(0), PROMOTE_DEGREE / 2 + 1)]);
        // Tombstoned group is reused without reallocating.
        a.insert(l(1), v(999));
        assert_eq!(a.labeled(l(1)).collect::<Vec<_>>(), vec![v(999)]);
        assert!(!a.remove(l(1), v(0)), "absent neighbor");
        assert!(!a.remove(l(9), v(0)), "absent label");
    }

    #[test]
    fn matching_modes_agree() {
        let mut a = Adjacency::default();
        for i in 0..(PROMOTE_DEGREE as u32 + 5) {
            a.insert(l(i % 4), v(i * 7 % 31));
        }
        for qlabel in [None, Some(l(0)), Some(l(3)), Some(l(9))] {
            let indexed: Vec<_> = a.matching(qlabel, AdjacencyMode::Indexed).collect();
            let scanned: Vec<_> = a.matching(qlabel, AdjacencyMode::FlatScan).collect();
            assert_eq!(indexed, scanned, "qlabel {qlabel:?}");
        }
    }

    #[test]
    fn any_and_count_to() {
        let mut a = Adjacency::default();
        a.insert(l(0), v(4));
        a.insert(l(1), v(4));
        a.insert(l(2), v(6));
        assert!(a.any_to(v(4)));
        assert!(!a.any_to(v(5)));
        assert_eq!(a.count_to(v(4)), 2);
        for i in 0..PROMOTE_DEGREE as u32 {
            a.insert(l(3), v(50 + i));
        }
        assert!(a.is_promoted());
        assert!(a.any_to(v(6)));
        assert_eq!(a.count_to(v(4)), 2);
        assert_eq!(a.count_to(v(7)), 0);
    }

    #[test]
    fn labeled_contains_both_reprs() {
        let mut a = Adjacency::default();
        a.insert(l(1), v(2));
        a.insert(l(1), v(8));
        assert!(a.labeled(l(1)).contains(v(8)));
        assert!(!a.labeled(l(1)).contains(v(3)));
        for i in 0..PROMOTE_DEGREE as u32 {
            a.insert(l(0), v(100 + i));
        }
        assert!(a.is_promoted());
        assert!(a.labeled(l(1)).contains(v(2)));
        assert!(!a.labeled(l(0)).contains(v(2)));
    }
}
