//! `tfx-graph` — the dynamic labeled graph substrate for the TurboFlux
//! reproduction.
//!
//! A *dynamic graph* is an initial graph plus a stream of edge insertions and
//! deletions (Definition 2 of the paper). This crate provides:
//!
//! * strongly typed identifiers ([`VertexId`], [`LabelId`]) and a string
//!   [`labels::LabelInterner`],
//! * [`LabelSet`] — a small sorted label set with subset tests, matching the
//!   paper's `L(u) ⊆ L'(m(u))` semantics,
//! * [`DynamicGraph`] — an in-memory directed multigraph with per-vertex
//!   label sets, labeled edges, and label-partitioned adjacency in both
//!   directions ([`adjacency`]): O(log) insert/delete within a label group
//!   and O(log + |group|) label-qualified neighbor enumeration,
//! * [`UpdateOp`] / [`UpdateStream`] — the graph update stream,
//! * [`intersect`] — galloping / SIMD-block intersection kernels over
//!   sorted `u32`-packed id runs, the primitive behind candidate
//!   enumeration in every engine,
//! * [`stats::GraphStats`] — cardinality statistics used to pick the starting
//!   query vertex and the query spanning tree, sourced from the index.

#![cfg_attr(feature = "portable_simd", feature(portable_simd))]

pub mod adjacency;
pub mod dynamic_graph;
pub mod ids;
pub mod intersect;
pub mod labels;
pub mod sharded;
pub mod stats;
pub mod stream;
pub mod view;

pub use adjacency::{
    AdjacencyMode, LabeledNeighbors, MatchingNeighbors, Neighbors, DIVERSE_LABELS, PROMOTE_DEGREE,
    PROMOTE_DEGREE_SKEWED, PROMOTE_HYSTERESIS,
};
pub use dynamic_graph::{DynamicGraph, EdgeRef};
pub use ids::{LabelId, VertexId};
pub use intersect::{contains_sorted, intersect_into, GALLOP_RATIO};
pub use labels::{LabelInterner, LabelSet};
pub use sharded::{shard_of, ShardView, ShardedGraph};
pub use stats::GraphStats;
pub use stream::{UpdateOp, UpdateStream};
pub use view::GraphView;
