//! Graph update streams (Definition 2 of the paper).
//!
//! A stream is a sequence of operations `Δo_i`. The paper's operations are
//! edge insertions and deletions; we additionally model explicit vertex
//! arrival ([`UpdateOp::AddVertex`]) because a streamed edge can reference a
//! vertex that did not exist in `g0`, and the engines need its labels before
//! the edge arrives.

use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// One update operation in a graph update stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UpdateOp {
    /// A new vertex arrives with its label set. Idempotent.
    AddVertex {
        /// The new vertex id.
        id: VertexId,
        /// Its labels.
        labels: LabelSet,
    },
    /// Edge insertion `(op, v, v')` with an edge label.
    InsertEdge {
        /// Source vertex.
        src: VertexId,
        /// Edge label.
        label: LabelId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// Edge deletion.
    DeleteEdge {
        /// Source vertex.
        src: VertexId,
        /// Edge label.
        label: LabelId,
        /// Destination vertex.
        dst: VertexId,
    },
}

impl UpdateOp {
    /// True for [`UpdateOp::InsertEdge`].
    pub fn is_insert(&self) -> bool {
        matches!(self, UpdateOp::InsertEdge { .. })
    }

    /// True for [`UpdateOp::DeleteEdge`].
    pub fn is_delete(&self) -> bool {
        matches!(self, UpdateOp::DeleteEdge { .. })
    }
}

/// An owned sequence of update operations.
#[derive(Clone, Default, Debug)]
pub struct UpdateStream {
    ops: Vec<UpdateOp>,
}

impl UpdateStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an op vector.
    pub fn from_ops(ops: Vec<UpdateOp>) -> Self {
        UpdateStream { ops }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
    }

    /// The operations in order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff there are no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of edge insertions.
    pub fn insert_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_insert()).count()
    }

    /// Number of edge deletions.
    pub fn delete_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_delete()).count()
    }

    /// A stream containing only the first `n` *edge* operations (vertex
    /// arrivals are kept when they precede a retained edge op).
    ///
    /// Used by the harness to vary the insertion rate (Fig. 8).
    pub fn truncate_edge_ops(&self, n: usize) -> UpdateStream {
        let mut out = Vec::new();
        let mut pending_vertices = Vec::new();
        let mut edges = 0usize;
        for op in &self.ops {
            match op {
                UpdateOp::AddVertex { .. } => pending_vertices.push(op.clone()),
                _ => {
                    if edges == n {
                        break;
                    }
                    edges += 1;
                    out.append(&mut pending_vertices);
                    out.push(op.clone());
                }
            }
        }
        UpdateStream::from_ops(out)
    }
}

impl IntoIterator for UpdateStream {
    type Item = UpdateOp;
    type IntoIter = std::vec::IntoIter<UpdateOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a UpdateStream {
    type Item = &'a UpdateOp;
    type IntoIter = std::slice::Iter<'a, UpdateOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(s: u32, d: u32) -> UpdateOp {
        UpdateOp::InsertEdge { src: VertexId(s), label: LabelId(0), dst: VertexId(d) }
    }

    fn addv(i: u32) -> UpdateOp {
        UpdateOp::AddVertex { id: VertexId(i), labels: LabelSet::empty() }
    }

    #[test]
    fn counts() {
        let s = UpdateStream::from_ops(vec![
            addv(0),
            ins(0, 1),
            UpdateOp::DeleteEdge { src: VertexId(0), label: LabelId(0), dst: VertexId(1) },
            ins(0, 2),
        ]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.insert_count(), 2);
        assert_eq!(s.delete_count(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn truncate_keeps_preceding_vertex_arrivals() {
        let s = UpdateStream::from_ops(vec![addv(0), ins(0, 1), addv(2), addv(3), ins(2, 3)]);
        let t = s.truncate_edge_ops(1);
        assert_eq!(t.ops(), &[addv(0), ins(0, 1)]);
        let t2 = s.truncate_edge_ops(2);
        assert_eq!(t2.len(), 5);
        let t0 = s.truncate_edge_ops(0);
        assert!(t0.is_empty());
    }

    #[test]
    fn op_kind_predicates() {
        assert!(ins(0, 1).is_insert());
        assert!(!ins(0, 1).is_delete());
        assert!(!addv(0).is_insert());
    }
}
