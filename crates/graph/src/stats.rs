//! Cardinality statistics over a data graph.
//!
//! `ChooseStartQVertex` (§4.1) needs, for a query edge `(u, u')`, the number
//! of data edges matching it, and for a query vertex `u` the number of data
//! vertices matching it. Queries are registered once per run, so these are
//! computed with exact single-pass scans at registration time rather than
//! maintained incrementally.

use crate::dynamic_graph::DynamicGraph;
use crate::ids::LabelId;
use crate::labels::LabelSet;

/// Exact matching-cardinality statistics computed from a graph snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats<'g> {
    graph: Option<&'g DynamicGraph>,
}

impl<'g> GraphStats<'g> {
    /// Builds statistics over `graph`.
    pub fn new(graph: &'g DynamicGraph) -> Self {
        GraphStats { graph: Some(graph) }
    }

    fn g(&self) -> &'g DynamicGraph {
        self.graph.expect("GraphStats::default has no graph")
    }

    /// Number of data vertices `v` with `labels ⊆ L(v)`.
    pub fn matching_vertex_count(&self, labels: &LabelSet) -> usize {
        let g = self.g();
        g.vertices().filter(|&v| labels.is_subset_of(g.labels(v))).count()
    }

    /// Number of data edges matching a query edge
    /// `(src_labels) -qlabel-> (dst_labels)`; `None` label is a wildcard.
    pub fn matching_edge_count(
        &self,
        src_labels: &LabelSet,
        qlabel: Option<LabelId>,
        dst_labels: &LabelSet,
    ) -> usize {
        let g = self.g();
        g.edges()
            .filter(|e| {
                qlabel.is_none_or(|ql| ql == e.label)
                    && src_labels.is_subset_of(g.labels(e.src))
                    && dst_labels.is_subset_of(g.labels(e.dst))
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn setup() -> DynamicGraph {
        // v0:A v1:A v2:B v3:(empty)
        let mut g = DynamicGraph::new();
        g.add_vertex(LabelSet::single(l(0)));
        g.add_vertex(LabelSet::single(l(0)));
        g.add_vertex(LabelSet::single(l(1)));
        g.add_vertex(LabelSet::empty());
        g.insert_edge(VertexId(0), l(10), VertexId(2)); // A -10-> B
        g.insert_edge(VertexId(1), l(10), VertexId(2)); // A -10-> B
        g.insert_edge(VertexId(1), l(11), VertexId(3)); // A -11-> ()
        g
    }

    #[test]
    fn vertex_counts() {
        let g = setup();
        let s = GraphStats::new(&g);
        assert_eq!(s.matching_vertex_count(&LabelSet::single(l(0))), 2);
        assert_eq!(s.matching_vertex_count(&LabelSet::single(l(1))), 1);
        assert_eq!(s.matching_vertex_count(&LabelSet::empty()), 4, "wildcard matches all");
        assert_eq!(s.matching_vertex_count(&LabelSet::single(l(9))), 0);
    }

    #[test]
    fn edge_counts() {
        let g = setup();
        let s = GraphStats::new(&g);
        let a = LabelSet::single(l(0));
        let b = LabelSet::single(l(1));
        assert_eq!(s.matching_edge_count(&a, Some(l(10)), &b), 2);
        assert_eq!(s.matching_edge_count(&a, None, &b), 2, "wildcard edge label");
        assert_eq!(s.matching_edge_count(&a, Some(l(11)), &LabelSet::empty()), 1);
        assert_eq!(s.matching_edge_count(&b, Some(l(10)), &a), 0, "direction matters");
    }
}
