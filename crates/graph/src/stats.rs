//! Cardinality statistics over a data graph.
//!
//! `ChooseStartQVertex` (§4.1) needs, for a query edge `(u, u')`, the number
//! of data edges matching it, and for a query vertex `u` the number of data
//! vertices matching it. The counts stay **exact** — they feed the start-
//! vertex and spanning-tree choices, which in turn fix delta ordering, so
//! estimates would silently change output — but they are now sourced from
//! the graph's maintained counters and label-partitioned adjacency index
//! instead of full edge-set rescans:
//!
//! * wildcard / single-label vertex counts come from the per-label vertex
//!   counters (O(1)),
//! * label-only edge counts come from the per-label edge counters (O(1)),
//! * endpoint-constrained edge counts walk only the matching side's label
//!   group per vertex instead of filtering every edge in the graph.

use crate::dynamic_graph::DynamicGraph;
use crate::ids::LabelId;
use crate::labels::LabelSet;

/// Exact matching-cardinality statistics computed from a graph snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats<'g> {
    graph: Option<&'g DynamicGraph>,
}

impl<'g> GraphStats<'g> {
    /// Builds statistics over `graph`.
    pub fn new(graph: &'g DynamicGraph) -> Self {
        GraphStats { graph: Some(graph) }
    }

    fn g(&self) -> &'g DynamicGraph {
        self.graph.expect("GraphStats::default has no graph")
    }

    /// Number of data vertices `v` with `labels ⊆ L(v)`.
    pub fn matching_vertex_count(&self, labels: &LabelSet) -> usize {
        let g = self.g();
        match labels.as_slice() {
            [] => g.vertex_count(),
            [l] => g.vertex_label_count(*l),
            _ => g.vertices().filter(|&v| labels.is_subset_of(g.labels(v))).count(),
        }
    }

    /// Number of data edges matching a query edge
    /// `(src_labels) -qlabel-> (dst_labels)`; `None` label is a wildcard.
    pub fn matching_edge_count(
        &self,
        src_labels: &LabelSet,
        qlabel: Option<LabelId>,
        dst_labels: &LabelSet,
    ) -> usize {
        let g = self.g();
        match (qlabel, src_labels.is_empty(), dst_labels.is_empty()) {
            (Some(l), true, true) => g.edge_label_count(l),
            (None, true, true) => g.edge_count(),
            // dst unconstrained: per matching source, the whole label group
            // (or full out-degree) counts — no per-neighbor test needed.
            (ql, false, true) => g
                .vertices()
                .filter(|&v| src_labels.is_subset_of(g.labels(v)))
                .map(|v| match ql {
                    Some(l) => g.out_degree_labeled(v, l),
                    None => g.out_degree(v),
                })
                .sum(),
            // src unconstrained: mirror over in-adjacency.
            (ql, true, false) => g
                .vertices()
                .filter(|&v| dst_labels.is_subset_of(g.labels(v)))
                .map(|v| match ql {
                    Some(l) => g.in_degree_labeled(v, l),
                    None => g.in_degree(v),
                })
                .sum(),
            // Both ends constrained: walk the source's label group and test
            // each neighbor's labels.
            (Some(l), false, false) => g
                .vertices()
                .filter(|&v| src_labels.is_subset_of(g.labels(v)))
                .map(|v| {
                    g.out_neighbors_labeled(v, l)
                        .filter(|&w| dst_labels.is_subset_of(g.labels(w)))
                        .count()
                })
                .sum(),
            (None, false, false) => g
                .vertices()
                .filter(|&v| src_labels.is_subset_of(g.labels(v)))
                .map(|v| {
                    g.out_neighbors(v)
                        .filter(|&(w, _)| dst_labels.is_subset_of(g.labels(w)))
                        .count()
                })
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn setup() -> DynamicGraph {
        // v0:A v1:A v2:B v3:(empty)
        let mut g = DynamicGraph::new();
        g.add_vertex(LabelSet::single(l(0)));
        g.add_vertex(LabelSet::single(l(0)));
        g.add_vertex(LabelSet::single(l(1)));
        g.add_vertex(LabelSet::empty());
        g.insert_edge(VertexId(0), l(10), VertexId(2)); // A -10-> B
        g.insert_edge(VertexId(1), l(10), VertexId(2)); // A -10-> B
        g.insert_edge(VertexId(1), l(11), VertexId(3)); // A -11-> ()
        g
    }

    #[test]
    fn vertex_counts() {
        let g = setup();
        let s = GraphStats::new(&g);
        assert_eq!(s.matching_vertex_count(&LabelSet::single(l(0))), 2);
        assert_eq!(s.matching_vertex_count(&LabelSet::single(l(1))), 1);
        assert_eq!(s.matching_vertex_count(&LabelSet::empty()), 4, "wildcard matches all");
        assert_eq!(s.matching_vertex_count(&LabelSet::single(l(9))), 0);
    }

    #[test]
    fn edge_counts() {
        let g = setup();
        let s = GraphStats::new(&g);
        let a = LabelSet::single(l(0));
        let b = LabelSet::single(l(1));
        assert_eq!(s.matching_edge_count(&a, Some(l(10)), &b), 2);
        assert_eq!(s.matching_edge_count(&a, None, &b), 2, "wildcard edge label");
        assert_eq!(s.matching_edge_count(&a, Some(l(11)), &LabelSet::empty()), 1);
        assert_eq!(s.matching_edge_count(&b, Some(l(10)), &a), 0, "direction matters");
        assert_eq!(s.matching_edge_count(&LabelSet::empty(), Some(l(10)), &LabelSet::empty()), 2);
        assert_eq!(s.matching_edge_count(&LabelSet::empty(), None, &LabelSet::empty()), 3);
        assert_eq!(s.matching_edge_count(&LabelSet::empty(), Some(l(10)), &b), 2);
        assert_eq!(s.matching_edge_count(&LabelSet::empty(), None, &b), 2);
        assert_eq!(s.matching_edge_count(&a, None, &LabelSet::empty()), 3);
    }

    #[test]
    fn counts_agree_with_naive_scan_after_updates() {
        let mut g = setup();
        g.delete_edge(VertexId(1), l(10), VertexId(2));
        g.insert_edge(VertexId(2), l(11), VertexId(0));
        let s = GraphStats::new(&g);
        let sets = [LabelSet::empty(), LabelSet::single(l(0)), LabelSet::single(l(1))];
        for src in &sets {
            for dst in &sets {
                for ql in [None, Some(l(10)), Some(l(11))] {
                    let naive = g
                        .edges()
                        .filter(|e| {
                            ql.is_none_or(|q| q == e.label)
                                && src.is_subset_of(g.labels(e.src))
                                && dst.is_subset_of(g.labels(e.dst))
                        })
                        .count();
                    assert_eq!(
                        s.matching_edge_count(src, ql, dst),
                        naive,
                        "src {src:?} ql {ql:?} dst {dst:?}"
                    );
                }
            }
        }
    }
}
