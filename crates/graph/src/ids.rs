//! Strongly typed identifiers for data vertices and labels.
//!
//! Identifiers are `u32` newtypes: the paper's datasets are tens of millions
//! of vertices at most, and a 4-byte id halves adjacency-list memory traffic
//! compared to `usize` (per the type-size guidance in the Rust Performance
//! Book).

use std::fmt;

/// Identifier of a data vertex in a [`crate::DynamicGraph`].
///
/// `repr(transparent)`: the SIMD intersection kernels
/// ([`crate::intersect`]) reinterpret `&[VertexId]` as `&[u32]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct VertexId(pub u32);

/// Identifier of an interned vertex or edge label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct LabelId(pub u32);

impl VertexId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LabelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<u32> for LabelId {
    #[inline]
    fn from(v: u32) -> Self {
        LabelId(v)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(7u32);
        assert_eq!(v.index(), 7);
        assert_eq!(format!("{v}"), "v7");
        assert_eq!(format!("{v:?}"), "v7");
    }

    #[test]
    fn label_id_roundtrip() {
        let l = LabelId::from(3u32);
        assert_eq!(l.index(), 3);
        assert_eq!(format!("{l}"), "l3");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(LabelId(0) < LabelId(9));
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<LabelId>(), 4);
    }
}
