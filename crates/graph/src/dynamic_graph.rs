//! The dynamic data graph: a directed, labeled multigraph under a stream of
//! edge insertions and deletions.
//!
//! Invariants:
//!
//! * At most one edge per `(src, label, dst)` triple; duplicate inserts are
//!   idempotent no-ops (returning `false`). Parallel edges between the same
//!   vertex pair with *different* labels are allowed.
//! * Adjacency is kept in both directions so the engines can traverse
//!   upward (toward start vertices) as well as downward. Each direction is a
//!   label-partitioned index (see [`crate::adjacency`]): neighbors are
//!   grouped by edge label, so label-qualified lookups touch only one group
//!   instead of the whole list, and enumeration order is always
//!   `(label, neighbor)` — deterministic and representation-independent.
//! * Vertices are never physically removed — the paper's update streams only
//!   insert/delete edges — but new vertices can appear at any point.

use crate::adjacency::{
    Adjacency, AdjacencyMode, LabelRuns, LabeledNeighbors, MatchingNeighbors, Neighbors,
};
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;
use crate::stream::UpdateOp;
use rustc_hash::FxHashSet;

/// A fully-qualified edge: source, edge label, destination.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EdgeRef {
    /// Source vertex.
    pub src: VertexId,
    /// Edge label.
    pub label: LabelId,
    /// Destination vertex.
    pub dst: VertexId,
}

impl EdgeRef {
    /// Convenience constructor.
    pub fn new(src: VertexId, label: LabelId, dst: VertexId) -> Self {
        EdgeRef { src, label, dst }
    }
}

/// An in-memory dynamic labeled multigraph.
#[derive(Clone, Default)]
pub struct DynamicGraph {
    vertex_labels: Vec<LabelSet>,
    out: Vec<Adjacency>,
    inc: Vec<Adjacency>,
    edges: FxHashSet<EdgeRef>,
    edge_label_counts: Vec<usize>,
    vertex_label_counts: Vec<usize>,
}

impl DynamicGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices ever created (ids are dense `0..n`).
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of live edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Creates a fresh vertex with the given label set and returns its id.
    pub fn add_vertex(&mut self, labels: LabelSet) -> VertexId {
        let id = VertexId(self.vertex_labels.len() as u32);
        for l in labels.iter() {
            if l.index() >= self.vertex_label_counts.len() {
                self.vertex_label_counts.resize(l.index() + 1, 0);
            }
            self.vertex_label_counts[l.index()] += 1;
        }
        self.vertex_labels.push(labels);
        self.out.push(Adjacency::default());
        self.inc.push(Adjacency::default());
        id
    }

    /// Ensures vertex `v` exists; newly created vertices in the gap get empty
    /// label sets, and `v` itself gets `labels` if it is new.
    ///
    /// Used when replaying streams whose vertex ids were assigned by a
    /// generator.
    pub fn ensure_vertex(&mut self, v: VertexId, labels: LabelSet) -> bool {
        if v.index() < self.vertex_labels.len() {
            return false;
        }
        while self.vertex_labels.len() < v.index() {
            self.add_vertex(LabelSet::empty());
        }
        self.add_vertex(labels);
        true
    }

    /// The label set of vertex `v`.
    #[inline]
    pub fn labels(&self, v: VertexId) -> &LabelSet {
        &self.vertex_labels[v.index()]
    }

    /// True iff vertex id `v` has been created.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.vertex_labels.len()
    }

    /// Inserts an edge. Returns `false` (and changes nothing) if the exact
    /// `(src, label, dst)` triple is already present.
    ///
    /// Panics if either endpoint does not exist.
    pub fn insert_edge(&mut self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        assert!(
            self.contains_vertex(src) && self.contains_vertex(dst),
            "insert_edge: endpoint does not exist ({src}, {dst})"
        );
        let e = EdgeRef::new(src, label, dst);
        if !self.edges.insert(e) {
            return false;
        }
        self.out[src.index()].insert(label, dst);
        self.inc[dst.index()].insert(label, src);
        if label.index() >= self.edge_label_counts.len() {
            self.edge_label_counts.resize(label.index() + 1, 0);
        }
        self.edge_label_counts[label.index()] += 1;
        true
    }

    /// Deletes an edge. Returns `false` if the triple was not present.
    ///
    /// O(log + |label group|) per direction: the label group is located by
    /// binary search and only its entries shift (the old flat representation
    /// scanned the whole O(deg) neighbor list twice).
    pub fn delete_edge(&mut self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        let e = EdgeRef::new(src, label, dst);
        if !self.edges.remove(&e) {
            return false;
        }
        let removed_out = self.out[src.index()].remove(label, dst);
        let removed_in = self.inc[dst.index()].remove(label, src);
        assert!(removed_out && removed_in, "edge set and adjacency out of sync");
        self.edge_label_counts[label.index()] -= 1;
        true
    }

    /// True iff the exact `(src, label, dst)` triple is a live edge.
    #[inline]
    pub fn has_edge(&self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        self.edges.contains(&EdgeRef::new(src, label, dst))
    }

    /// True iff some live edge `src → dst` matches the (optional) query edge
    /// label. `None` acts as a wildcard.
    pub fn has_edge_matching(&self, src: VertexId, dst: VertexId, qlabel: Option<LabelId>) -> bool {
        match qlabel {
            Some(l) => self.has_edge(src, l, dst),
            None => self.out[src.index()].any_to(dst),
        }
    }

    /// Number of parallel `src → dst` edges matching the query label.
    /// O(1) for a concrete label (at most one edge per triple); for a
    /// wildcard, one O(log |group|) probe per distinct out-label of `src`.
    pub fn count_edges_matching(
        &self,
        src: VertexId,
        dst: VertexId,
        qlabel: Option<LabelId>,
    ) -> usize {
        match qlabel {
            Some(l) => usize::from(self.has_edge(src, l, dst)),
            None => self.out[src.index()].count_to(dst),
        }
    }

    /// Out-neighbors of `v` as `(neighbor, edge label)` pairs, in
    /// `(label, neighbor)` order.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> Neighbors<'_> {
        self.out[v.index()].iter()
    }

    /// In-neighbors of `v` as `(neighbor, edge label)` pairs, in
    /// `(label, neighbor)` order.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> Neighbors<'_> {
        self.inc[v.index()].iter()
    }

    /// Out-neighbors of `v` over edges labeled exactly `label`: a sorted,
    /// duplicate-free group located in O(log).
    #[inline]
    pub fn out_neighbors_labeled(&self, v: VertexId, label: LabelId) -> LabeledNeighbors<'_> {
        self.out[v.index()].labeled(label)
    }

    /// In-neighbors of `v` over edges labeled exactly `label`.
    #[inline]
    pub fn in_neighbors_labeled(&self, v: VertexId, label: LabelId) -> LabeledNeighbors<'_> {
        self.inc[v.index()].labeled(label)
    }

    /// Out-neighbors of `v` matching an optional query-edge label, through
    /// the access path selected by `mode`. Both modes yield the same ids in
    /// the same order; [`AdjacencyMode::FlatScan`] exists as an ablation
    /// baseline that walks the whole list.
    #[inline]
    pub fn out_neighbors_matching(
        &self,
        v: VertexId,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_> {
        self.out[v.index()].matching(qlabel, mode)
    }

    /// In-neighbors of `v` matching an optional query-edge label (see
    /// [`Self::out_neighbors_matching`]).
    #[inline]
    pub fn in_neighbors_matching(
        &self,
        v: VertexId,
        qlabel: Option<LabelId>,
        mode: AdjacencyMode,
    ) -> MatchingNeighbors<'_> {
        self.inc[v.index()].matching(qlabel, mode)
    }

    /// True iff `v` has at least one outgoing edge labeled `label`. O(log).
    #[inline]
    pub fn has_out_label(&self, v: VertexId, label: LabelId) -> bool {
        self.out[v.index()].has_label(label)
    }

    /// True iff `v` has at least one incoming edge labeled `label`. O(log).
    #[inline]
    pub fn has_in_label(&self, v: VertexId, label: LabelId) -> bool {
        self.inc[v.index()].has_label(label)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inc[v.index()].len()
    }

    /// Number of outgoing edges of `v` labeled `label`. O(log).
    #[inline]
    pub fn out_degree_labeled(&self, v: VertexId, label: LabelId) -> usize {
        self.out[v.index()].labeled(label).len()
    }

    /// Number of incoming edges of `v` labeled `label`. O(log).
    #[inline]
    pub fn in_degree_labeled(&self, v: VertexId, label: LabelId) -> usize {
        self.inc[v.index()].labeled(label).len()
    }

    /// Distinct out-edge labels of `v` with their group sizes, label order.
    #[inline]
    pub fn out_label_runs(&self, v: VertexId) -> LabelRuns<'_> {
        self.out[v.index()].label_runs()
    }

    /// Distinct in-edge labels of `v` with their group sizes, label order.
    #[inline]
    pub fn in_label_runs(&self, v: VertexId) -> LabelRuns<'_> {
        self.inc[v.index()].label_runs()
    }

    /// True iff `v`'s out-adjacency has promoted to the per-label table
    /// (diagnostics / tests).
    pub fn out_is_promoted(&self, v: VertexId) -> bool {
        self.out[v.index()].is_promoted()
    }

    /// True iff `v`'s in-adjacency has promoted to the per-label table.
    pub fn in_is_promoted(&self, v: VertexId) -> bool {
        self.inc[v.index()].is_promoted()
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_labels.len() as u32).map(VertexId)
    }

    /// Iterates over all live edges (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges.iter().copied()
    }

    /// Number of live edges carrying `label`.
    pub fn edge_label_count(&self, label: LabelId) -> usize {
        self.edge_label_counts.get(label.index()).copied().unwrap_or(0)
    }

    /// Number of vertices whose label set contains `label` (maintained on
    /// vertex creation; vertex labels are immutable).
    pub fn vertex_label_count(&self, label: LabelId) -> usize {
        self.vertex_label_counts.get(label.index()).copied().unwrap_or(0)
    }

    /// Applies an update operation. Returns `true` if the graph changed.
    pub fn apply(&mut self, op: &UpdateOp) -> bool {
        match op {
            UpdateOp::AddVertex { id, labels } => self.ensure_vertex(*id, labels.clone()),
            UpdateOp::InsertEdge { src, label, dst } => self.insert_edge(*src, *label, *dst),
            UpdateOp::DeleteEdge { src, label, dst } => self.delete_edge(*src, *label, *dst),
        }
    }
}

impl std::fmt::Debug for DynamicGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DynamicGraph {{ vertices: {}, edges: {} }}",
            self.vertex_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::PROMOTE_DEGREE;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn labeled_graph(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for i in 0..n {
            g.add_vertex(LabelSet::single(l(i as u32 % 3)));
        }
        g
    }

    #[test]
    fn insert_and_query_edges() {
        let mut g = labeled_graph(3);
        assert!(g.insert_edge(VertexId(0), l(7), VertexId(1)));
        assert!(!g.insert_edge(VertexId(0), l(7), VertexId(1)), "duplicate");
        assert!(g.insert_edge(VertexId(0), l(8), VertexId(1)), "parallel other label");
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(VertexId(0), l(7), VertexId(1)));
        assert!(!g.has_edge(VertexId(1), l(7), VertexId(0)), "directed");
        assert!(g.has_edge_matching(VertexId(0), VertexId(1), None));
        assert!(g.has_edge_matching(VertexId(0), VertexId(1), Some(l(8))));
        assert!(!g.has_edge_matching(VertexId(0), VertexId(1), Some(l(9))));
        assert_eq!(g.count_edges_matching(VertexId(0), VertexId(1), None), 2);
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.in_degree(VertexId(1)), 2);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.edge_label_count(l(7)), 1);
        assert_eq!(g.out_degree_labeled(VertexId(0), l(7)), 1);
        assert_eq!(g.in_degree_labeled(VertexId(1), l(8)), 1);
        assert!(g.has_out_label(VertexId(0), l(8)));
        assert!(!g.has_out_label(VertexId(0), l(9)));
        assert!(g.has_in_label(VertexId(1), l(7)));
        assert!(!g.has_in_label(VertexId(0), l(7)));
    }

    #[test]
    fn delete_edges() {
        let mut g = labeled_graph(3);
        g.insert_edge(VertexId(0), l(1), VertexId(1));
        g.insert_edge(VertexId(0), l(1), VertexId(2));
        assert!(g.delete_edge(VertexId(0), l(1), VertexId(1)));
        assert!(!g.delete_edge(VertexId(0), l(1), VertexId(1)), "already gone");
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(VertexId(0), l(1), VertexId(1)));
        assert!(g.has_edge(VertexId(0), l(1), VertexId(2)));
        assert_eq!(g.out_neighbors(VertexId(0)).collect::<Vec<_>>(), vec![(VertexId(2), l(1))]);
        assert_eq!(g.in_neighbors(VertexId(1)).count(), 0);
        assert_eq!(g.edge_label_count(l(1)), 1);
    }

    #[test]
    fn delete_parallel_labeled_edge_on_promoted_vertex() {
        // A hub with enough fan-out to promote, plus several parallel edges
        // (distinct labels) to the same neighbor. Deleting one must leave the
        // others intact and touch only its own label group.
        let mut g = labeled_graph(2 + PROMOTE_DEGREE);
        let hub = VertexId(0);
        let peer = VertexId(1);
        for i in 0..PROMOTE_DEGREE as u32 {
            g.insert_edge(hub, l(50), VertexId(2 + i));
        }
        for lab in [10, 11, 12] {
            g.insert_edge(hub, l(lab), peer);
        }
        assert!(g.out_is_promoted(hub));
        assert_eq!(g.count_edges_matching(hub, peer, None), 3);

        assert!(g.delete_edge(hub, l(11), peer));
        assert!(!g.delete_edge(hub, l(11), peer), "already gone");
        assert!(g.has_edge(hub, l(10), peer));
        assert!(g.has_edge(hub, l(12), peer));
        assert!(!g.has_edge(hub, l(11), peer));
        assert_eq!(g.count_edges_matching(hub, peer, None), 2);
        assert_eq!(g.out_degree(hub), PROMOTE_DEGREE + 2);
        assert_eq!(g.out_degree_labeled(hub, l(50)), PROMOTE_DEGREE, "other group untouched");
        assert!(g.in_neighbors_labeled(peer, l(11)).is_empty());
        assert_eq!(g.in_neighbors_labeled(peer, l(10)).collect::<Vec<_>>(), vec![hub]);
        // The emptied group tombstones and is reusable.
        assert!(g.insert_edge(hub, l(11), peer));
        assert_eq!(g.count_edges_matching(hub, peer, None), 3);
    }

    #[test]
    fn vertex_label_counts_track_creation() {
        let g = labeled_graph(7); // labels 0,1,2 round-robin
        assert_eq!(g.vertex_label_count(l(0)), 3);
        assert_eq!(g.vertex_label_count(l(1)), 2);
        assert_eq!(g.vertex_label_count(l(2)), 2);
        assert_eq!(g.vertex_label_count(l(3)), 0);
    }

    #[test]
    fn ensure_vertex_fills_gaps() {
        let mut g = DynamicGraph::new();
        assert!(g.ensure_vertex(VertexId(3), LabelSet::single(l(5))));
        assert_eq!(g.vertex_count(), 4);
        assert!(g.labels(VertexId(0)).is_empty());
        assert!(g.labels(VertexId(3)).contains(l(5)));
        assert_eq!(g.vertex_label_count(l(5)), 1);
        assert!(!g.ensure_vertex(VertexId(2), LabelSet::single(l(9))), "exists");
        assert!(g.labels(VertexId(2)).is_empty(), "labels unchanged");
        assert_eq!(g.vertex_label_count(l(9)), 0);
    }

    #[test]
    fn apply_ops() {
        let mut g = DynamicGraph::new();
        assert!(g.apply(&UpdateOp::AddVertex { id: VertexId(0), labels: LabelSet::empty() }));
        assert!(g.apply(&UpdateOp::AddVertex { id: VertexId(1), labels: LabelSet::empty() }));
        assert!(g.apply(&UpdateOp::InsertEdge { src: VertexId(0), label: l(0), dst: VertexId(1) }));
        assert!(g.apply(&UpdateOp::DeleteEdge { src: VertexId(0), label: l(0), dst: VertexId(1) }));
        assert!(!g.apply(&UpdateOp::DeleteEdge {
            src: VertexId(0),
            label: l(0),
            dst: VertexId(1)
        }));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edges_iterator_sees_all_live_edges() {
        let mut g = labeled_graph(4);
        g.insert_edge(VertexId(0), l(0), VertexId(1));
        g.insert_edge(VertexId(1), l(0), VertexId(2));
        g.insert_edge(VertexId(2), l(0), VertexId(3));
        g.delete_edge(VertexId(1), l(0), VertexId(2));
        let mut es: Vec<_> = g.edges().collect();
        es.sort();
        assert_eq!(
            es,
            vec![
                EdgeRef::new(VertexId(0), l(0), VertexId(1)),
                EdgeRef::new(VertexId(2), l(0), VertexId(3)),
            ]
        );
    }
}
