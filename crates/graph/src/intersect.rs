//! Vectorized intersection kernels for sorted, duplicate-free id runs.
//!
//! The enumeration hot paths — DCG candidate expansion, the matcher's
//! generic-join extension, Graphflow's delta evaluation — all reduce to one
//! primitive: given two sorted, duplicate-free runs of `u32`-packed vertex
//! ids (label groups from the adjacency index, explicit DCG frontiers),
//! emit their intersection in order. Doing that with a per-element
//! `binary_search` costs `O(n log m)` with a data-dependent branch per
//! probe; this module provides two purpose-built kernels behind one entry
//! point, [`intersect_into`]:
//!
//! * **Galloping merge** ([`intersect_gallop_into`]) for skewed pairs: each
//!   element of the smaller run advances through the larger one by
//!   exponential probing from a monotone cursor, so the total cost is
//!   `O(n log(m/n))` — asymptotically optimal for `n ≪ m` and strictly
//!   better than restarting a full binary search per element.
//! * **Block compare** ([`intersect_linear_into`]) for comparable sizes: a
//!   4×4 all-pairs SIMD compare (SSE2 `_mm_cmpeq_epi32` against three
//!   shuffles of the other block, always available on `x86_64`) that
//!   advances whichever block exhausts first, falling back to a branchless
//!   scalar merge on other targets and for the tails. With the nightly-only
//!   `portable_simd` feature the same block kernel is expressed via
//!   `core::simd` instead of explicit intrinsics.
//!
//! The size-ratio cutoff ([`GALLOP_RATIO`]) picks between them. All kernels
//! produce byte-identical output (the sorted intersection) — a randomized
//! differential oracle in `tests/intersect_oracle.rs` pins every kernel to
//! the naive sorted-merge reference.
//!
//! Outputs are appended to a caller-owned `Vec`, which the engines use as a
//! segmented scratch stack: once its high-water capacity is reached,
//! steady-state intersection allocates nothing (asserted by
//! `tests/alloc_steady_state.rs`).

use crate::ids::VertexId;

/// Size-ratio cutoff between the galloping and block kernels: when one run
/// is at least this many times longer than the other, galloping's
/// `O(n log(m/n))` beats the linear kernel's `O(n + m)`.
pub const GALLOP_RATIO: usize = 16;

/// Run length at or below which a membership probe scans linearly instead
/// of binary-searching: on a handful of elements the predictable forward
/// scan wins against branchy halving (same rationale as the adjacency
/// index's [`crate::adjacency`] run location).
pub const LINEAR_PROBE_CUTOFF: usize = 16;

// `&[VertexId] -> &[u32]` casts below rely on the newtype being layout-
// identical to its payload.
const _: () = {
    assert!(std::mem::size_of::<VertexId>() == std::mem::size_of::<u32>());
    assert!(std::mem::align_of::<VertexId>() == std::mem::align_of::<u32>());
};

#[inline]
fn as_u32s(ids: &[VertexId]) -> &[u32] {
    // SAFETY: `VertexId` is `#[repr(transparent)]` over `u32` (checked by
    // the const assertion above), so the slices have identical layout.
    unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<u32>(), ids.len()) }
}

/// Appends `a ∩ b` to `out` in ascending order, picking the kernel by size
/// ratio. Both inputs must be sorted and duplicate-free; the output then is
/// too.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        intersect_gallop_into(small, large, out);
    } else {
        intersect_linear_into(small, large, out);
    }
}

/// True iff `v` occurs in the sorted run: a linear scan below
/// [`LINEAR_PROBE_CUTOFF`], binary search above it.
#[inline]
pub fn contains_sorted(run: &[VertexId], v: VertexId) -> bool {
    if run.len() <= LINEAR_PROBE_CUTOFF {
        run.contains(&v)
    } else {
        run.binary_search(&v).is_ok()
    }
}

/// Galloping (exponential-probe) intersection: for each element of `small`,
/// advance a monotone cursor through `large` by doubling steps, then binary
/// search only the final probe window. Appends matches to `out`.
///
/// Exposed (rather than private to [`intersect_into`]) so benches can pit
/// the kernels against each other at any size ratio.
pub fn intersect_gallop_into(small: &[VertexId], large: &[VertexId], out: &mut Vec<VertexId>) {
    let mut base = 0usize;
    for &x in small {
        if base >= large.len() {
            break;
        }
        if large[base] < x {
            // Gallop: find a window (base+lo, base+hi] with large[hi] >= x.
            let mut step = 1usize;
            let mut lo = 0usize;
            while base + lo + step < large.len() && large[base + lo + step] < x {
                lo += step;
                step <<= 1;
            }
            let hi = (lo + step + 1).min(large.len() - base);
            base += lo + 1 + large[base + lo + 1..base + hi].partition_point(|&y| y < x);
            if base >= large.len() {
                break;
            }
        }
        if large[base] == x {
            out.push(x);
            base += 1;
        }
    }
}

/// Linear (block-compare) intersection for comparable-size runs. Appends
/// matches to `out`. Dispatches to the SIMD block kernel where one exists;
/// the portable fallback is a branchless scalar merge.
pub fn intersect_linear_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    #[cfg(all(feature = "portable_simd", not(miri)))]
    {
        portable::intersect_blocks(a, b, out);
        return;
    }
    #[cfg(all(target_arch = "x86_64", not(feature = "portable_simd")))]
    {
        // SSE2 is part of the x86_64 baseline: no runtime detection needed.
        unsafe { sse2::intersect_blocks(a, b, out) };
        return;
    }
    #[allow(unreachable_code)]
    {
        scalar_merge_from(a, b, 0, 0, out);
    }
}

/// Branchless scalar merge from offsets `(i, j)` onward — the shared tail
/// loop of the block kernels and the portable whole-input fallback.
fn scalar_merge_from(
    a: &[VertexId],
    b: &[VertexId],
    mut i: usize,
    mut j: usize,
    out: &mut Vec<VertexId>,
) {
    let (a, b) = (as_u32s(a), as_u32s(b));
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            out.push(VertexId(x));
            i += 1;
            j += 1;
        } else {
            // Branchless advance: the comparison results compile to setcc,
            // so mispredict cost does not scale with input entropy.
            i += usize::from(x < y);
            j += usize::from(y < x);
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "portable_simd")))]
mod sse2 {
    use super::{as_u32s, scalar_merge_from};
    use crate::ids::VertexId;

    /// 4×4 all-pairs block intersection with SSE2. Each step loads one
    /// 4-lane block per side, compares every pair via three lane rotations
    /// of `b`, emits the matching `a` lanes in order, and advances the
    /// block whose maximum is smaller (both on a tie). Tails fall through
    /// to the scalar merge.
    ///
    /// # Safety
    /// Requires SSE2, which is unconditionally part of the `x86_64`
    /// baseline target features.
    pub(super) unsafe fn intersect_blocks(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
        use std::arch::x86_64::*;
        let (au, bu) = (as_u32s(a), as_u32s(b));
        let (mut i, mut j) = (0usize, 0usize);
        let (na, nb) = (au.len() & !3, bu.len() & !3);
        while i < na && j < nb {
            // SAFETY: i + 4 <= na <= au.len(), j + 4 <= nb <= bu.len(), and
            // loadu has no alignment requirement.
            let va = unsafe { _mm_loadu_si128(au.as_ptr().add(i).cast()) };
            let vb = unsafe { _mm_loadu_si128(bu.as_ptr().add(j).cast()) };
            // All-pairs equality: compare va against vb rotated by 0..4 lanes.
            let m0 = _mm_cmpeq_epi32(va, vb);
            let m1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01));
            let m2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10));
            let m3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11));
            let hit = _mm_or_si128(_mm_or_si128(m0, m1), _mm_or_si128(m2, m3));
            let mut mask = _mm_movemask_ps(_mm_castsi128_ps(hit)) as u32;
            // Lanes of `a` are ascending, so emitting by ascending bit
            // index keeps the output sorted.
            while mask != 0 {
                let k = mask.trailing_zeros() as usize;
                out.push(VertexId(au[i + k]));
                mask &= mask - 1;
            }
            let (amax, bmax) = (au[i + 3], bu[j + 3]);
            // Runs are duplicate-free, so nothing in the advanced block can
            // match again in the other's later blocks.
            i += if amax <= bmax { 4 } else { 0 };
            j += if bmax <= amax { 4 } else { 0 };
        }
        scalar_merge_from(a, b, i, j, out);
    }
}

#[cfg(feature = "portable_simd")]
mod portable {
    //! `core::simd` rendition of the block kernel (nightly-only feature;
    //! the stable build uses the SSE2 shims / scalar merge instead).
    use super::{as_u32s, scalar_merge_from};
    use crate::ids::VertexId;
    use core::simd::{cmp::SimdPartialEq, u32x4, Simd};

    pub(super) fn intersect_blocks(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
        let (au, bu) = (as_u32s(a), as_u32s(b));
        let (mut i, mut j) = (0usize, 0usize);
        let (na, nb) = (au.len() & !3, bu.len() & !3);
        while i < na && j < nb {
            let va: u32x4 = Simd::from_slice(&au[i..i + 4]);
            let vb: u32x4 = Simd::from_slice(&bu[j..j + 4]);
            let hit = va.simd_eq(vb)
                | va.simd_eq(vb.rotate_elements_left::<1>())
                | va.simd_eq(vb.rotate_elements_left::<2>())
                | va.simd_eq(vb.rotate_elements_left::<3>());
            let mut mask = hit.to_bitmask();
            while mask != 0 {
                let k = mask.trailing_zeros() as usize;
                out.push(VertexId(au[i + k]));
                mask &= mask - 1;
            }
            let (amax, bmax) = (au[i + 3], bu[j + 3]);
            i += if amax <= bmax { 4 } else { 0 };
            j += if bmax <= amax { 4 } else { 0 };
        }
        scalar_merge_from(a, b, i, j, out);
    }
}

/// Naive two-pointer sorted-merge reference — the differential-testing
/// ground truth for every kernel above (and the "pre-kernel path" a
/// per-element binary search approximates).
pub fn intersect_reference(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<VertexId> {
        xs.iter().map(|&x| VertexId(x)).collect()
    }

    fn run_all(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
        let expect = intersect_reference(a, b);
        for (name, got) in [
            ("auto", {
                let mut o = Vec::new();
                intersect_into(a, b, &mut o);
                o
            }),
            ("linear", {
                let mut o = Vec::new();
                intersect_linear_into(a, b, &mut o);
                o
            }),
            ("gallop_ab", {
                let mut o = Vec::new();
                intersect_gallop_into(a, b, &mut o);
                o
            }),
            ("gallop_ba", {
                let mut o = Vec::new();
                intersect_gallop_into(b, a, &mut o);
                o
            }),
        ] {
            assert_eq!(got, expect, "kernel {name} vs reference, a={a:?} b={b:?}");
        }
        expect
    }

    #[test]
    fn empty_and_singleton() {
        assert!(run_all(&[], &[]).is_empty());
        assert!(run_all(&ids(&[3]), &[]).is_empty());
        assert!(run_all(&[], &ids(&[3])).is_empty());
        assert_eq!(run_all(&ids(&[3]), &ids(&[3])), ids(&[3]));
        assert!(run_all(&ids(&[3]), &ids(&[4])).is_empty());
    }

    #[test]
    fn block_boundaries() {
        // Exactly 4, 5, 7, 8 elements exercise aligned blocks plus tails.
        let a = ids(&[1, 2, 3, 4, 10, 11, 12, 13]);
        let b = ids(&[2, 4, 6, 8, 10, 12, 14, 16]);
        assert_eq!(run_all(&a, &b), ids(&[2, 4, 10, 12]));
        assert_eq!(run_all(&a[..4], &b[..5]), ids(&[2, 4]));
        assert_eq!(run_all(&a[..7], &b[..7]), ids(&[2, 4, 10, 12]));
    }

    #[test]
    fn disjoint_and_nested_ranges() {
        assert!(run_all(&ids(&[1, 2, 3, 4, 5]), &ids(&[10, 20, 30, 40])).is_empty());
        // One run entirely inside a gap of the other.
        assert!(run_all(&ids(&[100, 200, 300, 400]), &ids(&[150, 151, 152, 153])).is_empty());
        // Subset relation.
        let big = ids(&(0..64).map(|i| i * 3).collect::<Vec<_>>());
        let sub = ids(&[0, 9, 33, 90, 189]);
        assert_eq!(run_all(&sub, &big), sub);
    }

    #[test]
    fn adversarial_size_ratio_uses_gallop() {
        let large: Vec<VertexId> = (0..10_000u32).map(|i| VertexId(i * 2)).collect();
        let small = ids(&[0, 2, 5, 19_998, 20_000, 99_999]);
        let expect = intersect_reference(&small, &large);
        let mut got = Vec::new();
        intersect_into(&small, &large, &mut got);
        assert_eq!(got, expect);
        assert_eq!(expect, ids(&[0, 2, 19_998]));
    }

    #[test]
    fn contains_sorted_both_regimes() {
        let short = ids(&[2, 4, 6]);
        assert!(contains_sorted(&short, VertexId(4)));
        assert!(!contains_sorted(&short, VertexId(5)));
        let long: Vec<VertexId> = (0..100u32).map(|i| VertexId(i * 3)).collect();
        assert!(contains_sorted(&long, VertexId(99)));
        assert!(!contains_sorted(&long, VertexId(100)));
        assert!(!contains_sorted(&[], VertexId(0)));
    }

    #[test]
    fn appends_without_clearing() {
        let mut out = ids(&[77]);
        intersect_into(&ids(&[1, 2, 3]), &ids(&[2, 3, 4]), &mut out);
        assert_eq!(out, ids(&[77, 2, 3]), "kernels append; callers own the prefix");
    }
}
