//! `tfx-stream` — the streaming ingestion subsystem.
//!
//! The engine crates answer *"given this update, what changed?"*; this crate
//! answers *"where do the updates come from, and when do old ones leave?"*.
//! It is layered the way StreamWorks-style continuous-matching deployments
//! are, and the way the paper's own workloads (Netflow flows that naturally
//! expire, LSBench activity streams) demand:
//!
//! 1. **Sources** ([`StreamSource`]) yield timestamped [`StreamEvent`]s.
//!    [`FileSource`] parses a timestamped superset of the `tfx` text stream
//!    format (strict or lenient error handling, line numbers in every
//!    diagnostic); [`SyntheticSource`] wraps the `tfx-datagen` generators
//!    (uniform / hub / lsbench / netflow).
//! 2. **Windows** ([`SlidingWindow`]) turn the insert stream into an
//!    insert *plus expiry-delete* stream: time-based windows expire edges
//!    whose validity interval `[ts, ts + width)` has passed, count-based
//!    windows keep the most recent `capacity` stream inserts. Eviction is
//!    FIFO (ties included) so the emitted op sequence is deterministic.
//! 3. **Driver** ([`StreamDriver`]) batches window output by op-count /
//!    stream-time thresholds into a [`BatchTarget`] (a single engine or a
//!    [`tfx_core::Fleet`]) and records per-batch [`StreamStats`].
//! 4. **Sinks** ([`DeltaSink`]) receive the match deltas: callback, JSONL
//!    writer, counting, or null.
//!
//! The correctness contract, enforced by `tests/stream_oracle.rs` at the
//! workspace root: a windowed run produces deltas *byte-identical* to
//! replaying the window's emitted op sequence as explicit inserts/deletes
//! on a fresh engine — under homomorphism and isomorphism, sequentially
//! and on a fleet, for time- and count-based windows.

pub mod driver;
pub mod event;
pub mod sink;
pub mod source;
pub mod synthetic;
pub mod window;

pub use driver::{BatchPolicy, BatchTarget, RunSummary, StreamDriver, StreamStats};
pub use event::StreamEvent;
pub use sink::{CallbackSink, CountingSink, DeltaRef, DeltaSink, JsonlSink, NullSink};
pub use source::{ErrorMode, FileSource, SourceError, StreamSource, VecSource};
pub use synthetic::{SyntheticKind, SyntheticSource};
pub use window::{SlidingWindow, WindowSpec};
