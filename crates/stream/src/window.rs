//! Sliding windows: turning an insert stream into insert + expiry-delete ops.
//!
//! The paper's streaming workloads never delete explicitly — a Netflow flow
//! is simply *old* at some point. A [`SlidingWindow`] makes that expiry
//! concrete: it forwards every incoming op and additionally emits
//! `DeleteEdge` ops for stream-inserted edges that leave the window, so a
//! downstream engine sees an ordinary insert/delete stream.
//!
//! # Semantics
//!
//! * **Time window** (`width`): an edge inserted at time `t` is valid over
//!   `[t, t + width)`; it expires as soon as an event with `ts >= t + width`
//!   arrives. Expiry deletes are emitted *before* the op of the event that
//!   triggered them.
//! * **Count window** (`capacity`): the window holds the most recent
//!   `capacity` live stream inserts; pushing one more evicts the oldest
//!   (an exactly-full window evicts nothing).
//! * **Eviction order** is FIFO in arrival order — among equal timestamps
//!   the earlier-pushed edge leaves first — so output is deterministic.
//! * **Duplicate (parallel) stream inserts** of the same `(src, label, dst)`
//!   are tracked as separate window entries, but the expiry delete is only
//!   emitted when the *last* live instance leaves: the data graph has edge
//!   set semantics, so deleting while a duplicate is still inside the
//!   window would kill an edge that logically remains.
//! * **Upstream explicit deletes** cancel every live instance of the edge
//!   immediately (the delete op passes through); the cancelled entries are
//!   discarded silently when they later reach the window boundary, so an
//!   edge is never double-deleted.
//! * Vertex arrivals and deletes of edges the window never saw (e.g. `g0`
//!   edges) pass through untouched; vertices do not expire.
//!
//! Only stream inserts are windowed: the initial graph `g0` is standing
//! state, exactly like a `CREATE`-loaded warehouse before a `WSCAN` starts.

use std::collections::VecDeque;

use rustc_hash::FxHashMap;
use tfx_graph::{LabelId, UpdateOp, VertexId};

use crate::event::StreamEvent;

/// What bounds the window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WindowSpec {
    /// No expiry; the window only forwards ops (and still de-duplicates
    /// nothing — it is a pass-through).
    Unbounded,
    /// Edges live for `width` ticks: valid over `[ts, ts + width)`.
    Time {
        /// Window width in ticks (≥ 1).
        width: u64,
    },
    /// The most recent `capacity` live stream inserts.
    Count {
        /// Maximum number of live entries (≥ 1).
        capacity: usize,
    },
}

impl WindowSpec {
    /// Parses `time:<width>` / `count:<capacity>` / `none`.
    pub fn parse(s: &str) -> Option<WindowSpec> {
        if s == "none" {
            return Some(WindowSpec::Unbounded);
        }
        let (kind, n) = s.split_once(':')?;
        match kind {
            "time" => n.parse().ok().filter(|&w| w >= 1).map(|width| WindowSpec::Time { width }),
            "count" => {
                n.parse().ok().filter(|&c| c >= 1).map(|capacity| WindowSpec::Count { capacity })
            }
            _ => None,
        }
    }
}

type EdgeKey = (VertexId, LabelId, VertexId);

/// One windowed stream insert.
#[derive(Clone, Copy, Debug)]
struct Entry {
    ts: u64,
    key: EdgeKey,
}

/// A sliding-window manager over one event stream.
///
/// Feed events in timestamp order with [`SlidingWindow::push`]; every op to
/// forward downstream (expiry deletes first, then the event's own op) is
/// appended to the caller's buffer.
pub struct SlidingWindow {
    spec: WindowSpec,
    /// Window entries in arrival (FIFO) order, including cancelled ones.
    entries: VecDeque<Entry>,
    /// Live (not cancelled) instance count per edge.
    live: FxHashMap<EdgeKey, u32>,
    /// Entries still in the deque whose edge was explicitly deleted
    /// upstream: discarded on arrival at the boundary, no delete emitted.
    cancelled: FxHashMap<EdgeKey, u32>,
    /// Total live entries (deque length minus cancelled entries).
    live_total: usize,
    /// Expiry deletes emitted so far.
    expired: u64,
}

impl SlidingWindow {
    /// A window with the given bound.
    pub fn new(spec: WindowSpec) -> Self {
        if let WindowSpec::Time { width } = spec {
            assert!(width >= 1, "time windows need width >= 1");
        }
        if let WindowSpec::Count { capacity } = spec {
            assert!(capacity >= 1, "count windows need capacity >= 1");
        }
        SlidingWindow {
            spec,
            entries: VecDeque::new(),
            live: FxHashMap::default(),
            cancelled: FxHashMap::default(),
            live_total: 0,
            expired: 0,
        }
    }

    /// Number of live stream inserts currently inside the window.
    pub fn live_len(&self) -> usize {
        self.live_total
    }

    /// Expiry deletes emitted so far (excludes pass-through deletes).
    pub fn expired_count(&self) -> u64 {
        self.expired
    }

    /// Feeds one event; appends the ops to forward (expiry deletes, then
    /// the event's own op) to `out`. Events must arrive in non-decreasing
    /// timestamp order.
    pub fn push(&mut self, ev: &StreamEvent, out: &mut Vec<UpdateOp>) {
        if let WindowSpec::Time { width } = self.spec {
            self.expire_older_than(ev.ts, width, out);
        }
        match ev.op {
            UpdateOp::AddVertex { .. } => out.push(ev.op.clone()),
            UpdateOp::InsertEdge { src, label, dst } => {
                out.push(ev.op.clone());
                let key = (src, label, dst);
                self.entries.push_back(Entry { ts: ev.ts, key });
                *self.live.entry(key).or_insert(0) += 1;
                self.live_total += 1;
                if let WindowSpec::Count { capacity } = self.spec {
                    while self.live_total > capacity {
                        self.evict_oldest_live(out);
                    }
                }
            }
            UpdateOp::DeleteEdge { src, label, dst } => {
                let key = (src, label, dst);
                if let Some(n) = self.live.remove(&key) {
                    *self.cancelled.entry(key).or_insert(0) += n;
                    self.live_total -= n as usize;
                }
                out.push(ev.op.clone());
            }
        }
    }

    /// Expires every remaining live entry in FIFO order (end-of-stream
    /// teardown; makes a windowed run leave an engine holding only `g0`
    /// plus pass-through state).
    pub fn drain(&mut self, out: &mut Vec<UpdateOp>) {
        while self.live_total > 0 {
            self.evict_oldest_live(out);
        }
        self.entries.clear();
        self.cancelled.clear();
    }

    /// Pops entries with `ts + width <= now`, emitting deletes for edges
    /// whose last live instance leaves.
    fn expire_older_than(&mut self, now: u64, width: u64, out: &mut Vec<UpdateOp>) {
        while let Some(front) = self.entries.front() {
            if front.ts.saturating_add(width) > now {
                break;
            }
            let e = *front;
            self.entries.pop_front();
            self.retire(e.key, out);
        }
    }

    /// Pops the oldest entry that is still live (discarding cancelled ones
    /// on the way), emitting its delete if it was the last instance.
    fn evict_oldest_live(&mut self, out: &mut Vec<UpdateOp>) {
        debug_assert!(self.live_total > 0);
        while let Some(e) = self.entries.pop_front() {
            let was_live = self.retire(e.key, out);
            if was_live {
                return;
            }
        }
        unreachable!("live_total > 0 implies a live entry in the deque");
    }

    /// Retires one popped entry: cancelled entries are discarded, live ones
    /// decrement their instance count and emit the delete when it reaches
    /// zero. Returns whether the entry was live.
    fn retire(&mut self, key: EdgeKey, out: &mut Vec<UpdateOp>) -> bool {
        if let Some(c) = self.cancelled.get_mut(&key) {
            *c -= 1;
            if *c == 0 {
                self.cancelled.remove(&key);
            }
            return false;
        }
        let n = self.live.get_mut(&key).expect("uncancelled entry is live");
        *n -= 1;
        self.live_total -= 1;
        if *n == 0 {
            self.live.remove(&key);
            self.expired += 1;
            out.push(UpdateOp::DeleteEdge { src: key.0, label: key.1, dst: key.2 });
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;

    fn ins(ts: u64, s: u32, d: u32) -> StreamEvent {
        StreamEvent::new(
            ts,
            UpdateOp::InsertEdge { src: VertexId(s), label: LabelId(0), dst: VertexId(d) },
        )
    }

    fn del(ts: u64, s: u32, d: u32) -> StreamEvent {
        StreamEvent::new(
            ts,
            UpdateOp::DeleteEdge { src: VertexId(s), label: LabelId(0), dst: VertexId(d) },
        )
    }

    fn del_op(s: u32, d: u32) -> UpdateOp {
        UpdateOp::DeleteEdge { src: VertexId(s), label: LabelId(0), dst: VertexId(d) }
    }

    fn ins_op(s: u32, d: u32) -> UpdateOp {
        UpdateOp::InsertEdge { src: VertexId(s), label: LabelId(0), dst: VertexId(d) }
    }

    fn run(spec: WindowSpec, events: &[StreamEvent]) -> Vec<UpdateOp> {
        let mut w = SlidingWindow::new(spec);
        let mut out = Vec::new();
        for ev in events {
            w.push(ev, &mut out);
        }
        out
    }

    #[test]
    fn time_window_expires_by_validity_interval() {
        // width 10: edge@0 valid over [0, 10), expires at the ts=10 event.
        let out = run(
            WindowSpec::Time { width: 10 },
            &[ins(0, 0, 1), ins(9, 1, 2), ins(10, 2, 3), ins(25, 3, 4)],
        );
        assert_eq!(
            out,
            vec![
                ins_op(0, 1),
                ins_op(1, 2),
                del_op(0, 1), // @10: the ts=0 edge leaves first…
                ins_op(2, 3), // …before the triggering insert
                del_op(1, 2),
                del_op(2, 3), // @25: both remaining edges expire, FIFO
                ins_op(3, 4),
            ]
        );
    }

    #[test]
    fn count_window_boundary_exactly_full_vs_overflow() {
        let evs = [ins(0, 0, 1), ins(1, 1, 2), ins(2, 2, 3)];
        // Exactly full: capacity 3 evicts nothing.
        let out = run(WindowSpec::Count { capacity: 3 }, &evs);
        assert_eq!(out, vec![ins_op(0, 1), ins_op(1, 2), ins_op(2, 3)]);
        // Overflow by one: the oldest leaves, delete *after* the insert
        // that pushed the window over (the insert happens, then the window
        // re-bounds itself).
        let out = run(WindowSpec::Count { capacity: 2 }, &evs);
        assert_eq!(out, vec![ins_op(0, 1), ins_op(1, 2), ins_op(2, 3), del_op(0, 1)]);
        let mut w = SlidingWindow::new(WindowSpec::Count { capacity: 2 });
        let mut buf = Vec::new();
        for e in &evs {
            w.push(e, &mut buf);
        }
        assert_eq!(w.live_len(), 2);
        assert_eq!(w.expired_count(), 1);
    }

    #[test]
    fn duplicate_parallel_edges_expire_in_insertion_order_delete_on_last() {
        // The same edge twice in the window: evicting the first instance
        // must NOT emit a delete (the edge is still logically present).
        let out = run(
            WindowSpec::Count { capacity: 2 },
            &[ins(0, 0, 1), ins(1, 0, 1), ins(2, 5, 6), ins(3, 7, 8)],
        );
        assert_eq!(
            out,
            vec![
                ins_op(0, 1),
                ins_op(0, 1), // duplicate forwarded (engine treats as no-op)
                ins_op(5, 6),
                // evicting instance #1 of (0,1): no delete yet
                ins_op(7, 8),
                del_op(0, 1), // instance #2 leaves: now the edge is gone
            ]
        );
    }

    #[test]
    fn upstream_delete_cancels_expiry_no_double_delete() {
        let out = run(WindowSpec::Time { width: 5 }, &[ins(0, 0, 1), del(2, 0, 1), ins(7, 1, 2)]);
        // The explicit delete passes through once; the ts=0 entry reaching
        // the boundary at ts=7 is discarded silently.
        assert_eq!(out, vec![ins_op(0, 1), del_op(0, 1), ins_op(1, 2)]);

        // Same for count windows: the cancelled entry does not occupy a
        // live slot, and eviction skips it without emitting anything.
        let out = run(
            WindowSpec::Count { capacity: 2 },
            &[ins(0, 0, 1), del(1, 0, 1), ins(2, 1, 2), ins(3, 2, 3), ins(4, 3, 4)],
        );
        assert_eq!(
            out,
            vec![
                ins_op(0, 1),
                del_op(0, 1),
                ins_op(1, 2),
                ins_op(2, 3),
                ins_op(3, 4),
                del_op(1, 2), // (1,2) is the oldest *live* entry
            ]
        );
    }

    #[test]
    fn delete_after_reinsert_only_cancels_live_instances() {
        // insert, delete, re-insert: the cancelled first instance must not
        // swallow the second one's expiry.
        let out = run(
            WindowSpec::Time { width: 4 },
            &[ins(0, 0, 1), del(1, 0, 1), ins(2, 0, 1), ins(8, 9, 9)],
        );
        assert_eq!(
            out,
            vec![
                ins_op(0, 1),
                del_op(0, 1),
                ins_op(0, 1),
                del_op(0, 1), // second instance expires at ts=8 (2+4 <= 8)
                ins_op(9, 9),
            ]
        );
    }

    #[test]
    fn unbounded_window_is_a_pass_through() {
        let evs = [ins(0, 0, 1), del(100, 0, 1), ins(200, 1, 2)];
        let out = run(WindowSpec::Unbounded, &evs);
        assert_eq!(out, vec![ins_op(0, 1), del_op(0, 1), ins_op(1, 2)]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let out = run(
            WindowSpec::Time { width: 1 },
            &[ins(0, 0, 1), ins(0, 1, 2), ins(0, 2, 3), ins(1, 9, 9)],
        );
        assert_eq!(
            out,
            vec![
                ins_op(0, 1),
                ins_op(1, 2),
                ins_op(2, 3),
                del_op(0, 1),
                del_op(1, 2),
                del_op(2, 3),
                ins_op(9, 9),
            ]
        );
    }

    #[test]
    fn vertices_pass_through_and_never_expire() {
        let v =
            StreamEvent::new(0, UpdateOp::AddVertex { id: VertexId(7), labels: LabelSet::empty() });
        let out = run(WindowSpec::Time { width: 1 }, &[v.clone(), ins(5, 0, 1)]);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], UpdateOp::AddVertex { .. }));
    }

    #[test]
    fn drain_expires_everything_fifo() {
        let mut w = SlidingWindow::new(WindowSpec::Time { width: 100 });
        let mut out = Vec::new();
        for e in [ins(0, 0, 1), ins(1, 1, 2), del(2, 0, 1)] {
            w.push(&e, &mut out);
        }
        out.clear();
        w.drain(&mut out);
        assert_eq!(out, vec![del_op(1, 2)], "cancelled entry drains silently");
        assert_eq!(w.live_len(), 0);
    }
}
