//! Timestamped stream events.

use tfx_graph::UpdateOp;

/// One timestamped update in an ingestion stream.
///
/// Timestamps are abstract monotonically non-decreasing "ticks" — sources
/// define what a tick means (a parsed `@ts` token, an auto-incremented line
/// counter, a synthetic event counter). Windows and the driver only ever
/// compare and subtract them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StreamEvent {
    /// Event time, in source-defined ticks.
    pub ts: u64,
    /// The update itself.
    pub op: UpdateOp,
}

impl StreamEvent {
    /// Convenience constructor.
    pub fn new(ts: u64, op: UpdateOp) -> Self {
        StreamEvent { ts, op }
    }
}
