//! Stream sources: where timestamped events come from.
//!
//! [`FileSource`] is the canonical text source. Its format is a superset of
//! the stream files the `tfx` CLI always accepted (`testdata/demo_stream.txt`
//! parses unchanged):
//!
//! ```text
//! v 7 User             # vertex 7 arrives with label User
//! + 3 7 knows          # insert edge 3 -knows-> 7
//! - 3 7 knows          # delete it again
//! @120 + 3 8 knows     # the same, at explicit stream time 120
//! @120 v 9 User        # equal timestamps are fine (FIFO order is kept)
//! ```
//!
//! * `@<ts>` prefixes a line with an explicit event time. Timestamps must
//!   be non-decreasing.
//! * Untimestamped lines get an implicit monotonic timestamp: one tick
//!   after the previous event (the first event is tick 0). Explicit and
//!   implicit lines can be mixed; the implicit counter continues from the
//!   last explicit time.
//! * `#` starts a comment; blank lines are ignored.
//!
//! Error handling is selected by [`ErrorMode`]: `Strict` stops at the first
//! malformed line ([`SourceError`] carries its 1-based line number);
//! `Lenient` skips malformed lines and records the same diagnostics in
//! [`FileSource::diagnostics`], clamping regressing timestamps forward so
//! the output stays monotonic.

use std::io::BufRead;

use tfx_graph::{LabelInterner, LabelSet, UpdateOp, VertexId};

use crate::event::StreamEvent;

/// A malformed line (or I/O failure) in a stream source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceError {
    /// 1-based line number of the offending input; 0 for non-line errors.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SourceError {}

/// How a source reacts to malformed input.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorMode {
    /// Stop at the first malformed line.
    Strict,
    /// Skip malformed lines, recording a diagnostic per skip.
    Lenient,
}

/// A source of timestamped update events.
pub trait StreamSource {
    /// The next event, `Ok(None)` at end of stream. Events must come in
    /// non-decreasing timestamp order.
    fn next_event(&mut self) -> Result<Option<StreamEvent>, SourceError>;
}

/// Replays a pre-built event vector. Useful in tests and as the adapter for
/// anything that already produced `(ts, op)` pairs.
pub struct VecSource {
    events: std::vec::IntoIter<StreamEvent>,
}

impl VecSource {
    /// Wraps an event vector (must already be timestamp-sorted).
    pub fn new(events: Vec<StreamEvent>) -> Self {
        debug_assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts));
        VecSource { events: events.into_iter() }
    }
}

impl StreamSource for VecSource {
    fn next_event(&mut self) -> Result<Option<StreamEvent>, SourceError> {
        Ok(self.events.next())
    }
}

/// Parses the timestamped text stream format from any [`BufRead`].
///
/// Labels are interned through the caller's [`LabelInterner`] so stream
/// labels, graph labels and query labels share one id space.
pub struct FileSource<'i, R: BufRead> {
    reader: R,
    interner: &'i mut LabelInterner,
    mode: ErrorMode,
    lineno: usize,
    /// Time of the last emitted event; `None` before the first one.
    clock: Option<u64>,
    diagnostics: Vec<SourceError>,
    buf: String,
    done: bool,
}

impl<'i, R: BufRead> FileSource<'i, R> {
    /// A source reading from `reader`, interning labels into `interner`.
    pub fn new(reader: R, interner: &'i mut LabelInterner, mode: ErrorMode) -> Self {
        FileSource {
            reader,
            interner,
            mode,
            lineno: 0,
            clock: None,
            diagnostics: Vec::new(),
            buf: String::new(),
            done: false,
        }
    }

    /// Diagnostics recorded so far (lenient mode only; strict mode returns
    /// its first error from [`StreamSource::next_event`] instead).
    pub fn diagnostics(&self) -> &[SourceError] {
        &self.diagnostics
    }

    /// Number of input lines consumed so far.
    pub fn lines_read(&self) -> usize {
        self.lineno
    }

    /// Records (lenient) or returns (strict) a per-line failure.
    fn fail(&mut self, line: usize, message: String) -> Result<(), SourceError> {
        let err = SourceError { line, message };
        match self.mode {
            ErrorMode::Strict => Err(err),
            ErrorMode::Lenient => {
                self.diagnostics.push(err);
                Ok(())
            }
        }
    }

    /// Parses one non-empty, comment-stripped line into an event.
    /// `Ok(None)` means the line was consumed by a lenient-mode skip.
    fn parse_line(
        &mut self,
        line: &str,
        lineno: usize,
    ) -> Result<Option<StreamEvent>, SourceError> {
        let mut parts = line.split_whitespace().peekable();
        // Optional explicit timestamp token.
        let mut ts = None;
        if let Some(tok) = parts.peek() {
            if let Some(raw) = tok.strip_prefix('@') {
                match raw.parse::<u64>() {
                    Ok(t) => ts = Some(t),
                    Err(_) => {
                        self.fail(lineno, format!("`@` needs an integer timestamp, got `@{raw}`"))?;
                        return Ok(None);
                    }
                }
                parts.next();
            }
        }
        // Monotonicity: implicit lines tick forward; explicit regressions
        // are an error (strict) or clamped to the current clock (lenient).
        let implicit = self.clock.map_or(0, |c| c + 1);
        let ts = match ts {
            None => implicit,
            Some(t) => {
                if let Some(c) = self.clock {
                    if t < c {
                        self.fail(
                            lineno,
                            format!("timestamp @{t} regresses (stream is at @{c}); clamped"),
                        )?;
                        c
                    } else {
                        t
                    }
                } else {
                    t
                }
            }
        };

        let Some(op) = parts.next() else {
            self.fail(lineno, "timestamp without an operation".to_owned())?;
            return Ok(None);
        };
        let parse_vertex = |s: Option<&str>| -> Result<VertexId, String> {
            s.ok_or_else(|| "missing vertex id".to_owned())?
                .parse::<u32>()
                .map(VertexId)
                .map_err(|_| "vertex ids are integers".to_owned())
        };
        let parsed: Result<UpdateOp, String> = match op {
            "v" => parse_vertex(parts.next()).map(|id| {
                let labels: LabelSet = parts.by_ref().map(|s| self.interner.intern(s)).collect();
                UpdateOp::AddVertex { id, labels }
            }),
            "+" | "-" => (|| {
                let src = parse_vertex(parts.next())?;
                let dst = parse_vertex(parts.next())?;
                let label = self
                    .interner
                    .intern(parts.next().ok_or_else(|| "edge ops need a label".to_owned())?);
                if parts.next().is_some() {
                    return Err("trailing tokens".to_owned());
                }
                Ok(if op == "+" {
                    UpdateOp::InsertEdge { src, label, dst }
                } else {
                    UpdateOp::DeleteEdge { src, label, dst }
                })
            })(),
            other => Err(format!("unknown op `{other}` (expected v, + or -)")),
        };
        match parsed {
            Ok(op) => {
                self.clock = Some(ts);
                Ok(Some(StreamEvent { ts, op }))
            }
            Err(message) => {
                self.fail(lineno, message)?;
                Ok(None)
            }
        }
    }
}

impl<R: BufRead> StreamSource for FileSource<'_, R> {
    fn next_event(&mut self) -> Result<Option<StreamEvent>, SourceError> {
        if self.done {
            return Ok(None);
        }
        loop {
            self.buf.clear();
            let n = self
                .reader
                .read_line(&mut self.buf)
                .map_err(|e| SourceError { line: self.lineno + 1, message: e.to_string() })?;
            if n == 0 {
                self.done = true;
                return Ok(None);
            }
            self.lineno += 1;
            let lineno = self.lineno;
            let line = self.buf.split('#').next().unwrap_or("").trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(ev) = self.parse_line(&line, lineno)? {
                return Ok(Some(ev));
            }
        }
    }
}

/// Drains a source to completion into a vector (test / tooling helper).
pub fn collect_events(src: &mut dyn StreamSource) -> Result<Vec<StreamEvent>, SourceError> {
    let mut out = Vec::new();
    while let Some(ev) = src.next_event()? {
        out.push(ev);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelId;

    fn parse_all(
        text: &str,
        mode: ErrorMode,
    ) -> (Result<Vec<StreamEvent>, SourceError>, Vec<SourceError>) {
        let mut it = LabelInterner::new();
        let mut src = FileSource::new(text.as_bytes(), &mut it, mode);
        let got = collect_events(&mut src);
        let diags = src.diagnostics().to_vec();
        (got, diags)
    }

    #[test]
    fn untimestamped_lines_get_implicit_monotonic_ticks() {
        let text = "+ 0 1 a\n\n# comment\nv 2 B\n- 0 1 a\n";
        let (got, diags) = parse_all(text, ErrorMode::Strict);
        let got = got.unwrap();
        assert!(diags.is_empty());
        assert_eq!(got.iter().map(|e| e.ts).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(matches!(got[0].op, UpdateOp::InsertEdge { .. }));
        assert!(matches!(got[1].op, UpdateOp::AddVertex { .. }));
        assert!(matches!(got[2].op, UpdateOp::DeleteEdge { .. }));
    }

    #[test]
    fn explicit_timestamps_mix_with_implicit_ones() {
        let text = "+ 0 1 a\n@10 + 1 2 a\n+ 2 3 a\n@11 + 3 4 a\n@12 v 9\n";
        let (got, _) = parse_all(text, ErrorMode::Strict);
        let ts: Vec<u64> = got.unwrap().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 10, 11, 11, 12]);
    }

    #[test]
    fn strict_mode_reports_first_error_with_line_number() {
        let text = "+ 0 1 a\n+ 0 oops a\n+ 1 2 a\n";
        let (got, _) = parse_all(text, ErrorMode::Strict);
        let err = got.unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("vertex ids are integers"));
        assert!(err.to_string().starts_with("line 2:"));
    }

    #[test]
    fn lenient_mode_skips_and_records_line_numbers() {
        let text = "+ 0 1 a\nbogus line\n+ 0 nan a\n@x + 1 2 a\n+ 1 2 a # fine\n+ 1 2\n";
        let (got, diags) = parse_all(text, ErrorMode::Lenient);
        let got = got.unwrap();
        assert_eq!(got.len(), 2, "two well-formed events survive");
        assert_eq!(got[1].ts, 1, "implicit clock skips bad lines without jumping");
        let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 6]);
        assert!(diags[0].message.contains("unknown op"));
        assert!(diags[1].message.contains("vertex ids are integers"));
        assert!(diags[2].message.contains("integer timestamp"));
        assert!(diags[3].message.contains("edge ops need a label"));
    }

    #[test]
    fn timestamp_regression_is_strict_error_lenient_clamp() {
        let text = "@10 + 0 1 a\n@5 + 1 2 a\n";
        let (got, _) = parse_all(text, ErrorMode::Strict);
        let err = got.unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("regresses"));

        let (got, diags) = parse_all(text, ErrorMode::Lenient);
        let got = got.unwrap();
        assert_eq!(got.iter().map(|e| e.ts).collect::<Vec<_>>(), vec![10, 10], "clamped");
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn demo_stream_format_parses_unchanged() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../testdata/demo_stream.txt"
        ))
        .expect("testdata present");
        let (got, diags) = parse_all(&text, ErrorMode::Strict);
        let got = got.unwrap();
        assert!(diags.is_empty());
        assert_eq!(got.len(), 6);
        assert_eq!(got.iter().map(|e| e.ts).collect::<Vec<_>>(), (0..6).collect::<Vec<u64>>());
        assert_eq!(got.iter().filter(|e| e.op.is_insert()).count(), 4);
        assert_eq!(got.iter().filter(|e| e.op.is_delete()).count(), 1);
    }

    #[test]
    fn labels_intern_through_the_shared_interner() {
        let mut it = LabelInterner::new();
        let knows = it.intern("knows");
        let mut src = FileSource::new("+ 0 1 knows\n".as_bytes(), &mut it, ErrorMode::Strict);
        let ev = src.next_event().unwrap().unwrap();
        match ev.op {
            UpdateOp::InsertEdge { label, .. } => assert_eq!(label, knows),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(it.get("knows"), Some(LabelId(0)));
    }
}
