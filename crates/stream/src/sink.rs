//! Delta sinks: where match deltas go.
//!
//! The engine crates deliver matches to bare closures; the driver instead
//! talks to a [`DeltaSink`] so destinations are first-class values — a
//! counting sink for smoke tests, a JSONL writer for tooling, a callback
//! adapter for embedding, a null sink for benchmarks.

use std::io::Write;

use tfx_graph::UpdateOp;
use tfx_query::{MatchRecord, Positiveness};

use crate::driver::{RunSummary, StreamStats};

/// One match delta as delivered to a sink.
#[derive(Clone, Copy, Debug)]
pub struct DeltaRef<'a> {
    /// Batch index (0-based) the triggering op was evaluated in.
    pub batch: usize,
    /// Engine (fleet registration index; 0 for a single engine).
    pub engine: usize,
    /// Index of the triggering op within its batch.
    pub op_index: usize,
    /// Index of the triggering op within the whole run.
    pub global_op: usize,
    /// Positive (match appeared) or negative (match disappeared).
    pub positiveness: Positiveness,
    /// The complete mapping. Borrowed; clone to keep.
    pub record: &'a MatchRecord,
}

/// A destination for match deltas and per-batch statistics.
pub trait DeltaSink {
    /// The ops of a batch, just before they are applied. Default: ignored.
    fn on_ops(&mut self, _batch: usize, _ops: &[UpdateOp]) {}

    /// One match delta.
    fn on_delta(&mut self, d: &DeltaRef<'_>);

    /// A batch finished evaluating. Default: ignored.
    fn on_batch(&mut self, _stats: &StreamStats) {}

    /// The run finished. Default: ignored.
    fn on_summary(&mut self, _summary: &RunSummary) {}
}

/// Discards everything (benchmark baseline).
#[derive(Default)]
pub struct NullSink;

impl DeltaSink for NullSink {
    fn on_delta(&mut self, _d: &DeltaRef<'_>) {}
}

/// Counts deltas without keeping them.
#[derive(Default, Debug)]
pub struct CountingSink {
    /// Matches that appeared.
    pub positive: u64,
    /// Matches that disappeared.
    pub negative: u64,
}

impl CountingSink {
    /// Total deltas seen.
    pub fn total(&self) -> u64 {
        self.positive + self.negative
    }
}

impl DeltaSink for CountingSink {
    fn on_delta(&mut self, d: &DeltaRef<'_>) {
        match d.positiveness {
            Positiveness::Positive => self.positive += 1,
            Positiveness::Negative => self.negative += 1,
        }
    }
}

/// Adapts a closure to a sink.
pub struct CallbackSink<F: FnMut(&DeltaRef<'_>)> {
    f: F,
}

impl<F: FnMut(&DeltaRef<'_>)> CallbackSink<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        CallbackSink { f }
    }
}

impl<F: FnMut(&DeltaRef<'_>)> DeltaSink for CallbackSink<F> {
    fn on_delta(&mut self, d: &DeltaRef<'_>) {
        (self.f)(d);
    }
}

/// Writes one JSON object per line: `delta` lines for matches, `batch`
/// lines for per-batch [`StreamStats`], one final `summary` line.
///
/// The JSON is hand-rolled (the build has no serde): all values are
/// integers or fixed strings, so escaping never arises.
pub struct JsonlSink<W: Write> {
    w: W,
}

impl<W: Write> JsonlSink<W> {
    /// Writes to `w`. Output is line-buffered by the caller's writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// The underlying writer (e.g. to flush at the end).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> DeltaSink for JsonlSink<W> {
    fn on_delta(&mut self, d: &DeltaRef<'_>) {
        let sign = match d.positiveness {
            Positiveness::Positive => '+',
            Positiveness::Negative => '-',
        };
        let mut line = format!(
            "{{\"type\":\"delta\",\"batch\":{},\"op\":{},\"engine\":{},\"sign\":\"{sign}\",\"embedding\":[",
            d.batch, d.global_op, d.engine
        );
        for (i, v) in d.record.as_slice().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&v.0.to_string());
        }
        line.push_str("]}");
        let _ = writeln!(self.w, "{line}");
    }

    fn on_batch(&mut self, s: &StreamStats) {
        let _ = writeln!(
            self.w,
            "{{\"type\":\"batch\",\"batch\":{},\"events\":{},\"ops\":{},\"inserts\":{},\"deletes\":{},\"expiry_deletes\":{},\"positive\":{},\"negative\":{},\"first_ts\":{},\"last_ts\":{},\"latency_us\":{}}}",
            s.batch,
            s.events_in,
            s.ops_out,
            s.inserts,
            s.deletes,
            s.expiry_deletes,
            s.positive,
            s.negative,
            s.first_ts,
            s.last_ts,
            s.latency.as_micros(),
        );
    }

    fn on_summary(&mut self, s: &RunSummary) {
        let _ = writeln!(
            self.w,
            "{{\"type\":\"summary\",\"batches\":{},\"events\":{},\"ops\":{},\"expiry_deletes\":{},\"positive\":{},\"negative\":{},\"elapsed_us\":{}}}",
            s.batches,
            s.events,
            s.ops,
            s.expiry_deletes,
            s.positive,
            s.negative,
            s.elapsed.as_micros(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn delta<'a>(rec: &'a MatchRecord, p: Positiveness) -> DeltaRef<'a> {
        DeltaRef { batch: 1, engine: 0, op_index: 2, global_op: 7, positiveness: p, record: rec }
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let rec = MatchRecord::new(vec![tfx_graph::VertexId(3), tfx_graph::VertexId(9)]);
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_delta(&delta(&rec, Positiveness::Positive));
        sink.on_delta(&delta(&rec, Positiveness::Negative));
        sink.on_batch(&StreamStats {
            batch: 1,
            events_in: 4,
            ops_out: 5,
            inserts: 3,
            deletes: 2,
            expiry_deletes: 1,
            positive: 1,
            negative: 1,
            first_ts: 10,
            last_ts: 13,
            latency: Duration::from_micros(42),
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"sign\":\"+\"") && lines[0].contains("\"embedding\":[3,9]"));
        assert!(lines[1].contains("\"sign\":\"-\""));
        assert!(lines[2].contains("\"type\":\"batch\"") && lines[2].contains("\"latency_us\":42"));
    }

    #[test]
    fn counting_sink_counts() {
        let rec = MatchRecord::new(vec![tfx_graph::VertexId(0)]);
        let mut sink = CountingSink::default();
        sink.on_delta(&delta(&rec, Positiveness::Positive));
        sink.on_delta(&delta(&rec, Positiveness::Positive));
        sink.on_delta(&delta(&rec, Positiveness::Negative));
        assert_eq!((sink.positive, sink.negative, sink.total()), (2, 1, 3));
    }

    #[test]
    fn callback_sink_forwards() {
        let rec = MatchRecord::new(vec![tfx_graph::VertexId(1)]);
        let mut seen = 0;
        {
            let mut sink = CallbackSink::new(|d: &DeltaRef<'_>| {
                assert_eq!(d.global_op, 7);
                seen += 1;
            });
            sink.on_delta(&delta(&rec, Positiveness::Positive));
        }
        assert_eq!(seen, 1);
    }
}
