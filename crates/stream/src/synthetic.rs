//! Synthetic sources: the `tfx-datagen` generators as timestamped streams.

use tfx_datagen::{hub, lsbench, netflow, uniform, Dataset};
use tfx_graph::UpdateStream;

use crate::event::StreamEvent;
use crate::source::{SourceError, StreamSource};

/// Which built-in generator backs a [`SyntheticSource`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyntheticKind {
    /// Uniform-random edges over labeled vertices ([`tfx_datagen::uniform`]).
    Uniform,
    /// Skewed hub fan-out workload ([`tfx_datagen::hub`]).
    Hub,
    /// LSBench-like social-media stream ([`tfx_datagen::lsbench`]).
    LsBench,
    /// Netflow-like trace: unlabeled hosts, eight protocols
    /// ([`tfx_datagen::netflow`]).
    Netflow,
}

impl SyntheticKind {
    /// Parses a CLI name (`uniform` / `hub` / `lsbench` / `netflow`).
    pub fn parse(s: &str) -> Option<SyntheticKind> {
        match s {
            "uniform" => Some(SyntheticKind::Uniform),
            "hub" => Some(SyntheticKind::Hub),
            "lsbench" => Some(SyntheticKind::LsBench),
            "netflow" => Some(SyntheticKind::Netflow),
            _ => None,
        }
    }

    /// Generates a demo-scale dataset for this kind (small enough for CLI
    /// smoke runs and examples; use the generator configs directly for
    /// larger instances).
    pub fn demo_dataset(self, seed: u64) -> Dataset {
        match self {
            SyntheticKind::Uniform => uniform::generate(&uniform::UniformConfig {
                seed,
                ..uniform::UniformConfig::default()
            }),
            SyntheticKind::Hub => {
                hub::generate(&hub::HubConfig { seed, ..hub::HubConfig::default() })
            }
            SyntheticKind::LsBench => {
                lsbench::generate(&lsbench::LsBenchConfig { users: 200, seed, stream_frac: 0.3 })
            }
            SyntheticKind::Netflow => netflow::generate(&netflow::NetflowConfig {
                hosts: 400,
                flows: 8_000,
                seed,
                stream_frac: 0.5,
            }),
        }
    }
}

/// Replays a generated [`UpdateStream`] as a timestamped event stream.
///
/// Timestamps are synthetic: the first event is tick 0 and every subsequent
/// event advances the clock by `ticks_per_event` (0 keeps the whole stream
/// at one instant). This mirrors trace replay at a fixed event rate — a
/// time window of width `w` then holds the last `w / ticks_per_event`
/// events, and a count window is rate-independent.
pub struct SyntheticSource {
    ops: std::vec::IntoIter<tfx_graph::UpdateOp>,
    ticks_per_event: u64,
    next_ts: u64,
    started: bool,
}

impl SyntheticSource {
    /// Replays `stream` at `ticks_per_event` ticks between events.
    pub fn from_stream(stream: UpdateStream, ticks_per_event: u64) -> Self {
        SyntheticSource { ops: stream.into_iter(), ticks_per_event, next_ts: 0, started: false }
    }

    /// Generates a demo-scale dataset and a source replaying its stream.
    /// The dataset (minus its consumed stream) is returned for `g0`, the
    /// interner, and schema-aware query authoring.
    pub fn demo(
        kind: SyntheticKind,
        seed: u64,
        ticks_per_event: u64,
    ) -> (Dataset, SyntheticSource) {
        let mut dataset = kind.demo_dataset(seed);
        let stream = std::mem::take(&mut dataset.stream);
        (dataset, SyntheticSource::from_stream(stream, ticks_per_event))
    }
}

impl StreamSource for SyntheticSource {
    fn next_event(&mut self) -> Result<Option<StreamEvent>, SourceError> {
        let Some(op) = self.ops.next() else {
            return Ok(None);
        };
        if self.started {
            self.next_ts += self.ticks_per_event;
        }
        self.started = true;
        Ok(Some(StreamEvent { ts: self.next_ts, op }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_events;

    #[test]
    fn replays_the_generated_stream_with_even_ticks() {
        let (dataset, mut src) = SyntheticSource::demo(SyntheticKind::Uniform, 7, 3);
        let events = collect_events(&mut src).unwrap();
        assert!(!events.is_empty());
        assert!(dataset.stream.is_empty(), "stream moved into the source");
        assert!(dataset.g0.edge_count() > 0);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.ts, 3 * i as u64);
        }
        // Determinism: same seed, same events.
        let (_, mut src2) = SyntheticSource::demo(SyntheticKind::Uniform, 7, 3);
        assert_eq!(collect_events(&mut src2).unwrap(), events);
    }

    #[test]
    fn kind_parsing_round_trips() {
        for (name, kind) in [
            ("uniform", SyntheticKind::Uniform),
            ("hub", SyntheticKind::Hub),
            ("lsbench", SyntheticKind::LsBench),
            ("netflow", SyntheticKind::Netflow),
        ] {
            assert_eq!(SyntheticKind::parse(name), Some(kind));
        }
        assert_eq!(SyntheticKind::parse("nope"), None);
    }
}
